/**
 * @file
 * Tests for the fault schedule: validation catches malformed
 * traces, generation is seeded-deterministic and always valid, and
 * the retry-backoff arithmetic is exact.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/fault_schedule.hh"
#include "fault/fault_server.hh"

namespace transfusion::fault
{
namespace
{

TEST(FaultSchedule, ValidateAcceptsAWellFormedTrace)
{
    FaultSchedule s;
    s.events.push_back({ 1.0, FaultKind::ChipLoss, 0 });
    s.events.push_back({ 2.0, FaultKind::LinkDegrade, -1, 0.5 });
    s.events.push_back({ 3.0, FaultKind::ChipRecovery, 0 });
    s.events.push_back({ 3.0, FaultKind::ChipLoss, 1 });
    EXPECT_NO_THROW(s.validate(2));
}

TEST(FaultSchedule, ValidateRejectsMalformedTraces)
{
    {
        FaultSchedule s; // out-of-order times
        s.events.push_back({ 2.0, FaultKind::ChipLoss, 0 });
        s.events.push_back({ 1.0, FaultKind::ChipRecovery, 0 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // chip out of range
        s.events.push_back({ 1.0, FaultKind::ChipLoss, 5 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // double loss without recovery
        s.events.push_back({ 1.0, FaultKind::ChipLoss, 0 });
        s.events.push_back({ 2.0, FaultKind::ChipLoss, 0 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // recovery of an up chip
        s.events.push_back({ 1.0, FaultKind::ChipRecovery, 0 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // degrade factor out of (0, 1]
        s.events.push_back(
            { 1.0, FaultKind::LinkDegrade, -1, 1.5 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // negative time
        s.events.push_back({ -1.0, FaultKind::ChipLoss, 0 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
}

TEST(FaultSchedule, TotalLossIsLegal)
{
    FaultSchedule s;
    s.events.push_back({ 1.0, FaultKind::ChipLoss, 0 });
    s.events.push_back({ 2.0, FaultKind::ChipLoss, 1 });
    EXPECT_NO_THROW(s.validate(2));
}

TEST(FaultSchedule, GenerationIsSeededDeterministic)
{
    FaultScheduleOptions o;
    o.incidents = 6;
    const FaultSchedule a = generateFaultSchedule(o, 4, 11);
    const FaultSchedule b = generateFaultSchedule(o, 4, 11);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].time_s, b.events[i].time_s);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].chip, b.events[i].chip);
        EXPECT_EQ(a.events[i].factor, b.events[i].factor);
    }
    const FaultSchedule c = generateFaultSchedule(o, 4, 12);
    EXPECT_NE(a.toString(), c.toString());
}

TEST(FaultSchedule, GenerationIsAlwaysValidAndPairsRecoveries)
{
    FaultScheduleOptions o;
    o.incidents = 12;
    o.link_degrade_prob = 0.3;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const FaultSchedule s = generateFaultSchedule(o, 3, seed);
        EXPECT_NO_THROW(s.validate(3)) << "seed " << seed;
        std::int64_t losses = 0;
        std::int64_t recoveries = 0;
        for (const FaultEvent &e : s.events) {
            losses += e.kind == FaultKind::ChipLoss;
            recoveries += e.kind == FaultKind::ChipRecovery;
        }
        EXPECT_EQ(losses, recoveries) << "seed " << seed;
    }
}

TEST(FaultSchedule, GeneratorNeverDownsTheLastChip)
{
    FaultScheduleOptions o;
    o.incidents = 10;
    o.link_degrade_prob = 0.0; // ask for losses only
    const FaultSchedule s = generateFaultSchedule(o, 1, 5);
    for (const FaultEvent &e : s.events)
        EXPECT_EQ(e.kind, FaultKind::LinkDegrade);
}

TEST(FaultSchedule, DownSpansCoverEveryUnhealthyInterval)
{
    // The fleet routes around a replica exactly while any chip is
    // down: spans open at the first loss, close when the *last*
    // down chip recovers, and overlapping outages coalesce.
    FaultSchedule s;
    s.events.push_back({ 1.0, FaultKind::ChipLoss, 0 });
    s.events.push_back({ 2.0, FaultKind::ChipLoss, 1 });  // overlap
    s.events.push_back({ 3.0, FaultKind::ChipRecovery, 0 });
    s.events.push_back({ 4.0, FaultKind::ChipRecovery, 1 });
    s.events.push_back({ 6.0, FaultKind::ChipLoss, 1 });
    s.events.push_back({ 7.0, FaultKind::ChipRecovery, 1 });
    const auto spans = s.downSpans(2);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].start_s, 1.0);
    EXPECT_EQ(spans[0].end_s, 4.0); // last recovery, not first
    EXPECT_EQ(spans[1].start_s, 6.0);
    EXPECT_EQ(spans[1].end_s, 7.0);
}

TEST(FaultSchedule, DownSpansOpenForeverWithoutRecovery)
{
    FaultSchedule s;
    s.events.push_back({ 2.5, FaultKind::ChipLoss, 1 });
    const auto spans = s.downSpans(2);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].start_s, 2.5);
    EXPECT_TRUE(std::isinf(spans[0].end_s));
}

TEST(FaultSchedule, LinkDegradesNeverOpenADownSpan)
{
    // A slower fabric still serves — degrades are the fault
    // server's replanning domain, not a routing outage.
    FaultSchedule s;
    s.events.push_back({ 1.0, FaultKind::LinkDegrade, -1, 0.25 });
    s.events.push_back({ 5.0, FaultKind::LinkDegrade, -1, 1.0 });
    EXPECT_TRUE(s.downSpans(2).empty());
    EXPECT_TRUE(FaultSchedule{}.downSpans(2).empty());
}

TEST(FaultSchedule, ValidateRejectsMixedKindRecoveries)
{
    {
        FaultSchedule s; // slowdown cleared by a loss recovery
        s.events.push_back(
            { 1.0, FaultKind::ChipSlowdown, 0, 2.0 });
        s.events.push_back({ 2.0, FaultKind::ChipRecovery, 0 });
        try {
            s.validate(2);
            FAIL() << "mixed-kind recovery must be rejected";
        } catch (const FatalError &e) {
            // The message names the chip, the timestamp, and both
            // kinds — the fuzz shrinker depends on that.
            const std::string msg = e.what();
            EXPECT_NE(msg.find("chip 0"), std::string::npos)
                << msg;
            EXPECT_NE(msg.find("t=2"), std::string::npos) << msg;
            EXPECT_NE(msg.find("chip-slowdown"), std::string::npos)
                << msg;
            EXPECT_NE(msg.find("chip-recovery"), std::string::npos)
                << msg;
        }
    }
    {
        FaultSchedule s; // loss cleared by a slowdown recovery
        s.events.push_back({ 1.0, FaultKind::ChipLoss, 0 });
        s.events.push_back(
            { 2.0, FaultKind::SlowdownRecovery, 0 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // slowdown on an already-down chip
        s.events.push_back({ 1.0, FaultKind::ChipLoss, 0 });
        s.events.push_back(
            { 2.0, FaultKind::ChipSlowdown, 0, 2.0 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // slowdown factor must be > 1
        s.events.push_back(
            { 1.0, FaultKind::ChipSlowdown, 0, 1.0 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // recovery of a full-speed chip
        s.events.push_back(
            { 1.0, FaultKind::SlowdownRecovery, 0 });
        EXPECT_THROW(s.validate(2), FatalError);
    }
    {
        FaultSchedule s; // loss-then-slowdown on distinct chips OK
        s.events.push_back({ 1.0, FaultKind::ChipLoss, 0 });
        s.events.push_back(
            { 2.0, FaultKind::ChipSlowdown, 1, 3.0 });
        s.events.push_back({ 3.0, FaultKind::ChipRecovery, 0 });
        s.events.push_back(
            { 4.0, FaultKind::SlowdownRecovery, 1 });
        EXPECT_NO_THROW(s.validate(2));
    }
}

TEST(FaultSchedule, SlowdownTimelineTakesTheMaxOverChips)
{
    // One slow chip gates the whole fused pipeline, so the replica
    // multiplier is the max over active per-chip slowdowns.
    FaultSchedule s;
    s.events.push_back({ 1.0, FaultKind::ChipSlowdown, 0, 2.0 });
    s.events.push_back({ 2.0, FaultKind::ChipSlowdown, 1, 4.0 });
    s.events.push_back(
        { 3.0, FaultKind::SlowdownRecovery, 1 });
    s.events.push_back(
        { 5.0, FaultKind::SlowdownRecovery, 0 });
    const auto tl = s.slowdownTimeline(2);
    ASSERT_EQ(tl.size(), 4u);
    EXPECT_EQ(tl[0].time_s, 1.0);
    EXPECT_EQ(tl[0].multiplier, 2.0);
    EXPECT_EQ(tl[1].time_s, 2.0);
    EXPECT_EQ(tl[1].multiplier, 4.0);
    EXPECT_EQ(tl[2].time_s, 3.0);
    EXPECT_EQ(tl[2].multiplier, 2.0); // chip 0 still slow
    EXPECT_EQ(tl[3].time_s, 5.0);
    EXPECT_EQ(tl[3].multiplier, 1.0); // full speed again
}

TEST(FaultSchedule, SlowdownTimelineCoalescesAndSkipsNoChange)
{
    // Same-timestamp events collapse into one step, and a step
    // that does not change the effective multiplier is dropped.
    FaultSchedule s;
    s.events.push_back({ 1.0, FaultKind::ChipSlowdown, 0, 4.0 });
    s.events.push_back({ 1.0, FaultKind::ChipSlowdown, 1, 2.0 });
    s.events.push_back(
        { 2.0, FaultKind::SlowdownRecovery, 1 }); // max unchanged
    s.events.push_back(
        { 3.0, FaultKind::SlowdownRecovery, 0 });
    const auto tl = s.slowdownTimeline(2);
    ASSERT_EQ(tl.size(), 2u);
    EXPECT_EQ(tl[0].time_s, 1.0);
    EXPECT_EQ(tl[0].multiplier, 4.0);
    EXPECT_EQ(tl[1].time_s, 3.0);
    EXPECT_EQ(tl[1].multiplier, 1.0);
    // Losses and link degrades never enter the timeline.
    FaultSchedule t;
    t.events.push_back({ 1.0, FaultKind::ChipLoss, 0 });
    t.events.push_back({ 2.0, FaultKind::LinkDegrade, -1, 0.5 });
    EXPECT_TRUE(t.slowdownTimeline(2).empty());
}

TEST(FaultSchedule, GeneratorEmitsValidCorrelatedSlowdowns)
{
    FaultScheduleOptions o;
    o.incidents = 12;
    o.link_degrade_prob = 0.0;
    o.slowdown_prob = 1.0; // slowdowns only
    o.slowdown_group = 3;
    o.max_multiplier = 6.0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const FaultSchedule s = generateFaultSchedule(o, 4, seed);
        EXPECT_NO_THROW(s.validate(4)) << "seed " << seed;
        std::int64_t slowdowns = 0;
        std::int64_t recoveries = 0;
        for (const FaultEvent &e : s.events) {
            if (e.kind == FaultKind::ChipSlowdown) {
                slowdowns += 1;
                EXPECT_GT(e.factor, 1.0);
                EXPECT_LE(e.factor, o.max_multiplier);
            }
            recoveries += e.kind == FaultKind::SlowdownRecovery;
        }
        EXPECT_EQ(slowdowns, recoveries) << "seed " << seed;
        EXPECT_GT(slowdowns, 0) << "seed " << seed;
    }
    // The correlated group shares one onset timestamp somewhere.
    const FaultSchedule s = generateFaultSchedule(o, 4, 3);
    bool correlated = false;
    for (std::size_t i = 1; i < s.events.size(); ++i)
        correlated = correlated
            || (s.events[i].kind == FaultKind::ChipSlowdown
                && s.events[i - 1].kind == FaultKind::ChipSlowdown
                && s.events[i].time_s == s.events[i - 1].time_s);
    EXPECT_TRUE(correlated);
}

TEST(FaultSchedule, SlowdownProbZeroPreservesTheLegacyStream)
{
    // The historical generator drew link-vs-loss from one uniform;
    // the slowdown arm partitions that same draw, so schedules at
    // slowdown_prob = 0 are bit-identical to schedules generated
    // before the arm existed (goldens pin the same property at the
    // RunReport level).
    FaultScheduleOptions legacy;
    legacy.incidents = 10;
    legacy.link_degrade_prob = 0.4;
    FaultScheduleOptions extended = legacy;
    extended.slowdown_prob = 0.0;
    extended.slowdown_group = 2;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto a = generateFaultSchedule(legacy, 3, seed);
        const auto b = generateFaultSchedule(extended, 3, seed);
        EXPECT_EQ(a.toString(), b.toString()) << "seed " << seed;
    }
}

TEST(RetryPolicy, BackoffGrowsGeometricallyAndCaps)
{
    RetryPolicy p;
    p.backoff_s = 0.5;
    p.multiplier = 2.0;
    p.cap_s = 3.0;
    EXPECT_EQ(p.delaySeconds(1), 0.5);
    EXPECT_EQ(p.delaySeconds(2), 1.0);
    EXPECT_EQ(p.delaySeconds(3), 2.0);
    EXPECT_EQ(p.delaySeconds(4), 3.0); // capped, not 4.0
    EXPECT_EQ(p.delaySeconds(10), 3.0);
}

TEST(RetryPolicy, HugeAttemptCountsNeverOverflowTheBackoff)
{
    // Iterated multiplication would hit inf near attempt ~1e3 for
    // multiplier 2; the clamp must keep every result finite, at
    // the cap, and monotone.
    RetryPolicy p;
    p.backoff_s = 0.5;
    p.multiplier = 2.0;
    p.cap_s = 30.0;
    for (const int attempt : { 1000, 100000, 1 << 30,
                               std::numeric_limits<int>::max() }) {
        const double d = p.delaySeconds(attempt);
        EXPECT_TRUE(std::isfinite(d)) << "attempt " << attempt;
        EXPECT_EQ(d, p.cap_s) << "attempt " << attempt;
    }
    // A multiplier of exactly 1 must not spin a billion no-op
    // multiplies (this returns promptly or the test times out).
    RetryPolicy flat;
    flat.multiplier = 1.0;
    flat.cap_s = 1e9;
    EXPECT_EQ(flat.delaySeconds(std::numeric_limits<int>::max()),
              flat.backoff_s);
    // An uncapped-in-practice policy still clamps at the cap even
    // when the product overflows to inf mid-loop.
    RetryPolicy wild;
    wild.backoff_s = 1e300;
    wild.multiplier = 1e10;
    wild.cap_s = 1e308;
    EXPECT_EQ(wild.delaySeconds(5000), wild.cap_s);
}

TEST(RetryPolicy, ValidateRejectsNonsense)
{
    RetryPolicy p;
    p.backoff_s = 0;
    EXPECT_THROW(p.validate(), FatalError);
    p = {};
    p.multiplier = 0.5;
    EXPECT_THROW(p.validate(), FatalError);
    p = {};
    p.cap_s = p.backoff_s / 2;
    EXPECT_THROW(p.validate(), FatalError);
    p = {};
    p.max_attempts = -1;
    EXPECT_THROW(p.validate(), FatalError);
    // Non-finite knobs are rejected up front, not discovered as
    // inf mid-backoff.
    p = {};
    p.cap_s = std::numeric_limits<double>::infinity();
    EXPECT_THROW(p.validate(), FatalError);
    p = {};
    p.multiplier = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(p.validate(), FatalError);
}

} // namespace
} // namespace transfusion::fault
