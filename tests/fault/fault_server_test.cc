/**
 * @file
 * Tests for the fault-tolerant server: the empty-schedule replay is
 * bit-identical to plain sharded serving (metrics and RunReport), a
 * mid-decode chip loss drains and retries with every request
 * accounted, replans are deterministic across thread counts, a
 * terminal outage rejects all outstanding work, and recovery
 * restores the initial plan.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/fault_server.hh"
#include "obs/obs.hh"
#include "obs/report.hh"
#include "serve/workload.hh"

namespace transfusion::fault
{
namespace
{

serve::WorkloadOptions
smallWorkload()
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s = 2.0;
    wl.requests = 16;
    wl.prompt = { 128, 256 };
    wl.output = { 16, 32 };
    return wl;
}

FaultServeOptions
fastOptions()
{
    FaultServeOptions o;
    o.serve.strategy = schedule::StrategyKind::TransFusion;
    o.serve.max_batch = 4;
    o.serve.cost.cache_samples = 3;
    o.serve.cost.prefill_samples = 3;
    o.serve.cost.evaluator.mcts.iterations = 32;
    o.initial_spec = { 2, 1 };
    o.plan_threads = 1;
    return o;
}

/** Field-wise bitwise equality of two serve ledgers. */
void
expectSameServeMetrics(const serve::ServeMetrics &a,
                       const serve::ServeMetrics &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.generated_tokens, b.generated_tokens);
    EXPECT_EQ(a.prefill_rounds, b.prefill_rounds);
    EXPECT_EQ(a.decode_rounds, b.decode_rounds);
    EXPECT_EQ(a.peak_running, b.peak_running);
    EXPECT_EQ(a.peak_queue, b.peak_queue);
    EXPECT_EQ(a.peak_reserved_words, b.peak_reserved_words);
    EXPECT_EQ(a.kv_capacity_words, b.kv_capacity_words);
    EXPECT_EQ(a.makespan_s, b.makespan_s); // bitwise
    EXPECT_EQ(a.tokens_per_second, b.tokens_per_second);
    EXPECT_EQ(a.ttft_s.count(), b.ttft_s.count());
    EXPECT_EQ(a.latency_s.count(), b.latency_s.count());
    if (!a.latency_s.empty() && !b.latency_s.empty()) {
        EXPECT_EQ(a.latency_s.max(), b.latency_s.max());
    }
}

TEST(FaultServer, EmptyScheduleIsBitIdenticalToShardedServing)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    const auto wl = smallWorkload();
    const auto opts = fastOptions();
    const auto trace = serve::generateWorkload(wl, 7);

    const FaultTolerantServer server(cluster, cfg, wl, opts);
    const auto baseline_sim = multichip::shardedSimulator(
        cluster, cfg, opts.initial_spec, wl, opts.serve);

    obs::Registry fault_reg;
    FaultServeMetrics faulted;
    {
        obs::ScopedRegistry scope(fault_reg);
        faulted = server.run(trace, FaultSchedule{});
    }
    obs::Registry base_reg;
    serve::ServeMetrics base;
    {
        obs::ScopedRegistry scope(base_reg);
        base = baseline_sim.run(trace);
    }

    expectSameServeMetrics(faulted.serve, base);
    EXPECT_EQ(faulted.fault_events, 0);
    EXPECT_EQ(faulted.retries, 0);
    EXPECT_EQ(faulted.replans, 0);
    ASSERT_EQ(faulted.windows.size(), 1u);
    EXPECT_EQ(faulted.windows[0].tokens,
              base.generated_tokens);

    // The observable record must match bit-for-bit too: no fault
    // counters, no extra spans, identical serve attribution.
    EXPECT_EQ(obs::RunReport::capture(fault_reg).toString(),
              obs::RunReport::capture(base_reg).toString());
}

TEST(FaultServer, ChipLossMidDecodeDrainsRetriesAndAccounts)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    // Saturate the server: every request arrives up front, so the
    // mid-trace loss is guaranteed to land with decodes in flight.
    auto wl = smallWorkload();
    wl.arrival_per_s = 100.0;
    const auto opts = fastOptions();
    const auto trace = serve::generateWorkload(wl, 7);

    const FaultTolerantServer server(cluster, cfg, wl, opts);
    const auto healthy = server.run(trace, {});
    ASSERT_GT(healthy.serve.makespan_s, 0);

    FaultSchedule faults;
    faults.events.push_back({ 0.5 * healthy.serve.makespan_s,
                              FaultKind::ChipLoss, 1 });
    const auto m = server.run(trace, faults);

    // The loss lands mid-trace, so work was in flight: it drains,
    // retries, and the run completes on the surviving chip.
    EXPECT_EQ(m.fault_events, 1);
    EXPECT_EQ(m.chip_losses, 1);
    EXPECT_EQ(m.replans, 1);
    EXPECT_GT(m.evictions, 0);
    EXPECT_EQ(m.retries, m.evictions);
    EXPECT_GE(m.wasted_tokens, m.evictions); // each had >= 1 token
    // Accounting invariant: every offered request ends the run
    // completed or rejected (retried-to-completion counts as
    // completed).
    EXPECT_EQ(m.serve.completed + m.serve.rejected,
              m.serve.offered);
    EXPECT_GT(m.degraded_s, 0);
    ASSERT_EQ(m.windows.size(), 2u);
    EXPECT_EQ(m.windows[0].chips, 2);
    EXPECT_EQ(m.windows[1].chips, 1);
    EXPECT_FALSE(m.windows[1].outage);
    EXPECT_EQ(m.windows[0].tokens + m.windows[1].tokens,
              m.serve.generated_tokens);
    // Degraded serving can only be slower end-to-end.
    EXPECT_GE(m.serve.makespan_s, healthy.serve.makespan_s);
}

TEST(FaultServer, ReplanIsBitIdenticalAcrossThreadCounts)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    const auto wl = smallWorkload();
    const auto trace = serve::generateWorkload(wl, 7);

    FaultSchedule faults;
    faults.events.push_back({ 2.0, FaultKind::ChipLoss, 0 });
    faults.events.push_back({ 6.0, FaultKind::ChipRecovery, 0 });

    std::vector<FaultServeMetrics> runs;
    for (int threads : { 1, 4 }) {
        auto opts = fastOptions();
        opts.plan_threads = threads;
        const FaultTolerantServer server(cluster, cfg, wl, opts);
        runs.push_back(server.run(trace, faults));
    }
    expectSameServeMetrics(runs[0].serve, runs[1].serve);
    EXPECT_EQ(runs[0].retries, runs[1].retries);
    EXPECT_EQ(runs[0].evictions, runs[1].evictions);
    EXPECT_EQ(runs[0].degraded_s, runs[1].degraded_s); // bitwise
    ASSERT_EQ(runs[0].windows.size(), runs[1].windows.size());
    for (std::size_t i = 0; i < runs[0].windows.size(); ++i) {
        EXPECT_EQ(runs[0].windows[i].end_s,
                  runs[1].windows[i].end_s);
        EXPECT_EQ(runs[0].windows[i].tokens,
                  runs[1].windows[i].tokens);
        EXPECT_EQ(runs[0].windows[i].spec.tp,
                  runs[1].windows[i].spec.tp);
        EXPECT_EQ(runs[0].windows[i].spec.pp,
                  runs[1].windows[i].spec.pp);
    }
}

TEST(FaultServer, TerminalOutageRejectsAllOutstandingWork)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    const auto wl = smallWorkload();
    const auto opts = fastOptions();
    const auto trace = serve::generateWorkload(wl, 7);

    // Both chips die before the first arrival and never return.
    FaultSchedule faults;
    faults.events.push_back({ 1e-4, FaultKind::ChipLoss, 0 });
    faults.events.push_back({ 2e-4, FaultKind::ChipLoss, 1 });

    const FaultTolerantServer server(cluster, cfg, wl, opts);
    const auto m = server.run(trace, faults);

    EXPECT_EQ(m.serve.completed, 0);
    EXPECT_EQ(m.serve.rejected, m.serve.offered);
    EXPECT_EQ(m.serve.generated_tokens, 0);
    ASSERT_FALSE(m.windows.empty());
    EXPECT_TRUE(m.windows.back().outage);
    // The zero-completion ledger must render, not abort — the
    // regression percentileOr and the "-" fields fix.
    const std::string s = m.serve.summary();
    EXPECT_NE(s.find("completed=0"), std::string::npos);
    EXPECT_NE(s.find("ttft_p50=-"), std::string::npos);
    EXPECT_NE(m.summary().find("outage"), std::string::npos);
}

TEST(FaultServer, RecoveryRestoresTheInitialPlan)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    const auto wl = smallWorkload();
    const auto opts = fastOptions();
    const auto trace = serve::generateWorkload(wl, 7);

    const FaultTolerantServer server(cluster, cfg, wl, opts);
    const auto healthy = server.run(trace, {});

    FaultSchedule faults;
    faults.events.push_back({ 0.3 * healthy.serve.makespan_s,
                              FaultKind::ChipLoss, 1 });
    faults.events.push_back({ 0.6 * healthy.serve.makespan_s,
                              FaultKind::ChipRecovery, 1 });
    const auto m = server.run(trace, faults);

    EXPECT_EQ(m.chip_losses, 1);
    EXPECT_EQ(m.chip_recoveries, 1);
    ASSERT_GE(m.windows.size(), 3u);
    EXPECT_EQ(m.windows.front().spec.tp, opts.initial_spec.tp);
    EXPECT_EQ(m.windows.front().spec.pp, opts.initial_spec.pp);
    EXPECT_EQ(m.windows.back().spec.tp, opts.initial_spec.tp);
    EXPECT_EQ(m.windows.back().spec.pp, opts.initial_spec.pp);
    EXPECT_EQ(m.windows.back().chips, 2);
    EXPECT_EQ(m.serve.completed + m.serve.rejected,
              m.serve.offered);
}

TEST(FaultServer, LinkDegradeKeepsServingWithoutEvictions)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    const auto wl = smallWorkload();
    const auto opts = fastOptions();
    const auto trace = serve::generateWorkload(wl, 7);

    const FaultTolerantServer server(cluster, cfg, wl, opts);
    const auto healthy = server.run(trace, {});

    FaultSchedule faults;
    faults.events.push_back({ 0.4 * healthy.serve.makespan_s,
                              FaultKind::LinkDegrade, -1, 0.25 });
    const auto m = server.run(trace, faults);

    EXPECT_EQ(m.link_degradations, 1);
    EXPECT_EQ(m.evictions, 0);
    EXPECT_EQ(m.replans, 1);
    EXPECT_EQ(m.serve.completed, m.serve.offered);
    ASSERT_EQ(m.windows.size(), 2u);
    EXPECT_EQ(m.windows[1].link_scale, 0.25);
    EXPECT_EQ(m.windows[1].chips, 2);
    // A 4x slower fabric cannot speed the trace up.
    EXPECT_GE(m.serve.makespan_s, healthy.serve.makespan_s);
}

TEST(FaultServer, ChipSlowdownDegradesWithoutReplanOrEviction)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    const auto wl = smallWorkload();
    const auto opts = fastOptions();
    const auto trace = serve::generateWorkload(wl, 7);

    const FaultTolerantServer server(cluster, cfg, wl, opts);
    const auto healthy = server.run(trace, {});

    // One chip runs 3x slow mid-trace, then recovers.  A gray
    // failure: no drain, no replan, no evictions — the session
    // just runs slower while the window is open.
    FaultSchedule faults;
    faults.events.push_back({ 0.3 * healthy.serve.makespan_s,
                              FaultKind::ChipSlowdown, 1, 3.0 });
    faults.events.push_back({ 0.7 * healthy.serve.makespan_s,
                              FaultKind::SlowdownRecovery, 1 });
    const auto m = server.run(trace, faults);

    EXPECT_EQ(m.chip_slowdowns, 1);
    EXPECT_EQ(m.slowdown_recoveries, 1);
    EXPECT_EQ(m.chip_losses, 0);
    EXPECT_EQ(m.replans, 0);
    EXPECT_EQ(m.evictions, 0);
    EXPECT_EQ(m.retries, 0);
    // Everything completes — just slower than the healthy run.
    EXPECT_EQ(m.serve.completed, m.serve.offered);
    EXPECT_GE(m.serve.makespan_s, healthy.serve.makespan_s);
    // The slowed span is accounted as degraded time.
    EXPECT_GT(m.slowdown_s, 0);
    EXPECT_LE(m.slowdown_s, m.degraded_s);
    // Windows carry the multiplier: healthy, x3, healthy.
    ASSERT_EQ(m.windows.size(), 3u);
    EXPECT_EQ(m.windows[0].slowdown, 1.0);
    EXPECT_EQ(m.windows[1].slowdown, 3.0);
    EXPECT_EQ(m.windows[2].slowdown, 1.0);
    // Same spec throughout: a slowdown never costs a replan.
    for (const auto &w : m.windows) {
        EXPECT_EQ(w.spec.tp, opts.initial_spec.tp);
        EXPECT_EQ(w.spec.pp, opts.initial_spec.pp);
    }
    // The degraded replay is deterministic.
    const auto again = server.run(trace, faults);
    expectSameServeMetrics(m.serve, again.serve);
}

TEST(FaultServer, SlowdownComposesWithALossOnAnotherChip)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    const auto wl = smallWorkload();
    const auto opts = fastOptions();
    const auto trace = serve::generateWorkload(wl, 7);

    const FaultTolerantServer server(cluster, cfg, wl, opts);
    const auto healthy = server.run(trace, {});
    const double mk = healthy.serve.makespan_s;

    // Chip 0 slows while chip 1 is lost and recovered: the
    // slowdown persists across the structural replans.
    FaultSchedule faults;
    faults.events.push_back(
        { 0.2 * mk, FaultKind::ChipSlowdown, 0, 2.0 });
    faults.events.push_back({ 0.4 * mk, FaultKind::ChipLoss, 1 });
    faults.events.push_back(
        { 0.6 * mk, FaultKind::ChipRecovery, 1 });
    faults.events.push_back(
        { 0.8 * mk, FaultKind::SlowdownRecovery, 0 });
    EXPECT_NO_THROW(faults.validate(2));
    const auto m = server.run(trace, faults);

    EXPECT_EQ(m.chip_slowdowns, 1);
    EXPECT_EQ(m.chip_losses, 1);
    // Only the loss costs a degraded-mode replan (recovery just
    // restores the cached initial plan); the slowdown costs none.
    EXPECT_EQ(m.replans, 1);
    EXPECT_EQ(m.serve.completed + m.serve.rejected,
              m.serve.offered);
    // The degraded-mode window (1 chip) still carries the x2.
    bool slowed_single_chip = false;
    for (const auto &w : m.windows)
        slowed_single_chip = slowed_single_chip
            || (w.chips == 1 && w.slowdown == 2.0);
    EXPECT_TRUE(slowed_single_chip);
}

TEST(FaultServer, AutoPlanPicksAFeasibleSpec)
{
    const auto cluster = multichip::edgeCluster(2);
    const auto cfg = model::t5Small();
    const auto wl = smallWorkload();
    auto opts = fastOptions();
    opts.initial_spec = { 0, 0 }; // plan at construction
    const FaultTolerantServer server(cluster, cfg, wl, opts);
    const auto spec = server.initialSpec();
    EXPECT_EQ(spec.chips(), cluster.size());
    EXPECT_GT(spec.tp, 0);
    EXPECT_GT(spec.pp, 0);
}

} // namespace
} // namespace transfusion::fault
