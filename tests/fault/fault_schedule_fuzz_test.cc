/**
 * @file
 * Randomized invariants of the fault-schedule generator and of
 * downSpans, swept over ten thousand seeds: every generated trace
 * must validate, keep its timestamps sorted, pair every loss with
 * a later recovery of the same chip, and never down the last
 * healthy chip; and the downSpans view must round-trip against an
 * independent replay of the raw event list.
 *
 * Own binary under the `fuzz` label: the sweep is cheap per seed
 * but 10k-deep, so it stays out of the unit tier's latency budget.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_schedule.hh"

namespace transfusion::fault
{
namespace
{

constexpr int kSeeds = 10000;

FaultScheduleOptions
fuzzOptions(std::uint64_t seed)
{
    // Vary the shape with the seed so the sweep covers sparse and
    // dense schedules, long and short outages, and both link-heavy
    // and loss-heavy mixes.
    FaultScheduleOptions o;
    o.incidents = 1 + static_cast<int>(seed % 7);
    o.horizon_s = 10.0 + static_cast<double>(seed % 5) * 25.0;
    o.mean_outage_s = 0.5 + static_cast<double>(seed % 3) * 4.0;
    o.link_degrade_prob =
        static_cast<double>(seed % 4) * 0.25; // 0, .25, .5, .75
    o.min_factor = 0.25;
    // Mixed-kind coverage: a third of the seeds add gray failures
    // (kept within the probability budget link + slowdown <= 1),
    // some with correlated groups.
    if (seed % 3 == 0) {
        o.slowdown_prob = (1.0 - o.link_degrade_prob) * 0.5;
        o.mean_slowdown_s = 1.0 + static_cast<double>(seed % 5);
        o.max_multiplier = 2.0 + static_cast<double>(seed % 4);
        o.slowdown_group = 1 + static_cast<int>(seed % 3);
    }
    return o;
}

/** Chip up/down replay of the raw event list. */
struct Replay
{
    std::vector<bool> down;
    int down_count = 0;

    explicit Replay(int cluster_size)
        : down(static_cast<std::size_t>(cluster_size), false)
    {}

    void apply(const FaultEvent &e)
    {
        if (e.kind == FaultKind::ChipLoss) {
            down[static_cast<std::size_t>(e.chip)] = true;
            down_count += 1;
        } else if (e.kind == FaultKind::ChipRecovery) {
            down[static_cast<std::size_t>(e.chip)] = false;
            down_count -= 1;
        }
    }
};

TEST(FaultScheduleFuzz, GeneratedSchedulesKeepTheirInvariants)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const int cluster = 2 + static_cast<int>(seed % 7);
        const auto opts = fuzzOptions(seed);
        const FaultSchedule s =
            generateFaultSchedule(opts, cluster, seed);

        // Valid by construction (validate is fatal otherwise), and
        // a pure function of (options, cluster, seed).
        s.validate(cluster);
        const FaultSchedule again =
            generateFaultSchedule(opts, cluster, seed);
        ASSERT_EQ(s.events.size(), again.events.size())
            << "seed " << seed;

        int losses = 0;
        int recoveries = 0;
        int slowdowns = 0;
        int slowdown_recoveries = 0;
        Replay replay(cluster);
        double prev = 0;
        for (std::size_t i = 0; i < s.events.size(); ++i) {
            const FaultEvent &e = s.events[i];
            // Sorted, non-negative timestamps.
            ASSERT_GE(e.time_s, prev)
                << "seed " << seed << " event " << i;
            prev = e.time_s;
            if (e.kind == FaultKind::LinkDegrade) {
                ASSERT_GE(e.factor, opts.min_factor)
                    << "seed " << seed;
                ASSERT_LE(e.factor, 1.0) << "seed " << seed;
                continue;
            }
            if (e.kind == FaultKind::ChipSlowdown) {
                // Gray-failure multipliers live in
                // (1, max_multiplier].
                ASSERT_GT(e.factor, 1.0) << "seed " << seed;
                ASSERT_LE(e.factor, opts.max_multiplier)
                    << "seed " << seed;
            }
            losses += e.kind == FaultKind::ChipLoss;
            recoveries += e.kind == FaultKind::ChipRecovery;
            slowdowns += e.kind == FaultKind::ChipSlowdown;
            slowdown_recoveries +=
                e.kind == FaultKind::SlowdownRecovery;
            replay.apply(e);
            // Last-chip protection: the generator never downs the
            // final healthy chip, so at least one always serves.
            // (A slowed chip still counts as serving.)
            ASSERT_LT(replay.down_count, cluster)
                << "seed " << seed << " event " << i;
        }
        // Every fault pairs with a matching-kind recovery: the
        // replay ends fully healthy at full speed, and the counts
        // match exactly.
        EXPECT_EQ(losses, recoveries) << "seed " << seed;
        EXPECT_EQ(slowdowns, slowdown_recoveries)
            << "seed " << seed;
        EXPECT_EQ(replay.down_count, 0) << "seed " << seed;
    }
}

TEST(FaultScheduleFuzz, SlowdownTimelineRoundTripsTheRawEvents)
{
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const int cluster = 2 + static_cast<int>(seed % 7);
        const FaultSchedule s =
            generateFaultSchedule(fuzzOptions(seed), cluster, seed);
        const std::vector<SlowdownStep> tl =
            s.slowdownTimeline(cluster);

        // Rebuild the timeline from the raw events: per-chip
        // multipliers, replica multiplier = max over chips, one
        // step per timestamp where the max actually changes.
        std::vector<double> mult(
            static_cast<std::size_t>(cluster), 1.0);
        std::vector<SlowdownStep> expected;
        double current = 1.0;
        std::size_t i = 0;
        while (i < s.events.size()) {
            const double t = s.events[i].time_s;
            while (i < s.events.size()
                   && s.events[i].time_s == t) {
                const FaultEvent &e = s.events[i];
                if (e.kind == FaultKind::ChipSlowdown)
                    mult[static_cast<std::size_t>(e.chip)] =
                        e.factor;
                else if (e.kind == FaultKind::SlowdownRecovery)
                    mult[static_cast<std::size_t>(e.chip)] = 1.0;
                i += 1;
            }
            double peak = 1.0;
            for (const double m : mult)
                peak = std::max(peak, m);
            if (peak != current) {
                expected.push_back({ t, peak });
                current = peak;
            }
        }

        ASSERT_EQ(tl.size(), expected.size())
            << "seed " << seed << ": " << s.toString();
        double prev_t = -1;
        for (std::size_t k = 0; k < tl.size(); ++k) {
            EXPECT_EQ(tl[k].time_s, expected[k].time_s)
                << "seed " << seed << " step " << k;
            EXPECT_EQ(tl[k].multiplier, expected[k].multiplier)
                << "seed " << seed << " step " << k;
            // Strictly increasing times, every step a change.
            ASSERT_GT(tl[k].time_s, prev_t)
                << "seed " << seed << " step " << k;
            prev_t = tl[k].time_s;
            if (k > 0) {
                ASSERT_NE(tl[k].multiplier, tl[k - 1].multiplier)
                    << "seed " << seed << " step " << k;
            }
        }
        // The timeline always ends back at full speed (generated
        // slowdowns are paired), and never dips below 1.
        if (!tl.empty()) {
            EXPECT_EQ(tl.back().multiplier, 1.0)
                << "seed " << seed;
        }
    }
}

TEST(FaultScheduleFuzz, DownSpansRoundTripTheRawEventList)
{
    constexpr double kInf = std::numeric_limits<double>::infinity();
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const int cluster = 2 + static_cast<int>(seed % 7);
        const FaultSchedule s =
            generateFaultSchedule(fuzzOptions(seed), cluster, seed);
        const std::vector<DownSpan> spans = s.downSpans(cluster);

        // Rebuild the spans from the raw events: a span opens when
        // the first chip goes down and closes when the last one
        // recovers.
        std::vector<DownSpan> expected;
        Replay replay(cluster);
        for (const FaultEvent &e : s.events) {
            const int before = replay.down_count;
            replay.apply(e);
            if (before == 0 && replay.down_count > 0)
                expected.push_back({ e.time_s, kInf });
            else if (before > 0 && replay.down_count == 0)
                expected.back().end_s = e.time_s;
        }

        ASSERT_EQ(spans.size(), expected.size())
            << "seed " << seed << ": " << s.toString();
        double prev_end = -1;
        for (std::size_t i = 0; i < spans.size(); ++i) {
            EXPECT_EQ(spans[i].start_s, expected[i].start_s)
                << "seed " << seed << " span " << i;
            EXPECT_EQ(spans[i].end_s, expected[i].end_s)
                << "seed " << seed << " span " << i;
            // Merged and in time order: spans never touch or
            // overlap, and only the final span may be unbounded.
            ASSERT_GT(spans[i].start_s, prev_end)
                << "seed " << seed << " span " << i;
            ASSERT_GT(spans[i].end_s, spans[i].start_s)
                << "seed " << seed << " span " << i;
            prev_end = spans[i].end_s;
            if (std::isinf(spans[i].end_s)) {
                ASSERT_EQ(i, spans.size() - 1) << "seed " << seed;
            }
        }
    }
}

} // namespace
} // namespace transfusion::fault
