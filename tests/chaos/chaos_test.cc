/**
 * @file
 * Seeded chaos-invariant harness: hundreds of randomized fault
 * schedules (losses, link degrades, correlated gray-failure
 * slowdowns) swept across routing policies, health/brownout
 * configurations, and both sim cores, with five invariants asserted
 * on every run:
 *
 *   1. conservation — completed + rejected == offered, fleet-wide
 *      and per replica;
 *   2. core agreement — Legacy and EventHeap replays are bitwise
 *      identical (metrics and RunReport);
 *   3. thread independence — threads=1 and threads=4 replays are
 *      bitwise identical;
 *   4. termination — every run returns (the ctest TIMEOUT property
 *      on this binary is the backstop for a hung loop);
 *   5. exact recovery — a fault-tolerant server replay whose
 *      schedule was fully applied ends on the exact initial spec.
 *
 * Seeds fan out over the ThreadPool; gtest assertions are not
 * thread-safe, so workers return failure strings and the main
 * thread asserts the collection is empty.  Own binary under the
 * `chaos` label: heavier than the unit tier, cheap enough for CI.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "fault/fault_server.hh"
#include "fleet/fleet_sim.hh"
#include "obs/obs.hh"
#include "obs/report.hh"
#include "serve/workload.hh"

namespace transfusion::fleet
{
namespace
{

constexpr int kSeeds = 70;      ///< x3 replica schedules per seed
constexpr int kReplicas = 3;
constexpr int kChipsPerReplica = 2;

/** Cheap calibration knobs (cost tables are cached process-wide,
 *  so every fleet construction after the first is cheap). */
serve::ServeOptions
fastServe(serve::SimCoreKind core)
{
    serve::ServeOptions o;
    o.strategy = schedule::StrategyKind::TransFusion;
    o.max_batch = 4;
    o.cost.cache_samples = 3;
    o.cost.prefill_samples = 3;
    o.cost.evaluator.mcts.iterations = 32;
    o.core = core;
    return o;
}

/** Per-seed fleet configuration: health on even seeds, brownout on
 *  every third, so detector paths chaos-test alongside plain
 *  failover — under BOTH loop cores and BOTH thread counts. */
FleetOptions
fleetOptions(std::uint64_t seed, serve::SimCoreKind core,
             int threads)
{
    FleetOptions o;
    o.serve = fastServe(core);
    o.core = core;
    o.threads = threads;
    o.plan_threads = 1;
    if (seed % 2 == 0) {
        o.health.enabled = true;
        o.health.alpha = 0.5;
        o.health.depth_breach =
            3.0 + static_cast<double>(seed % 5);
        o.health.breach_streak = 2;
        o.health.cooldown_updates = 3;
        o.health.probe_updates = 2;
    }
    if (seed % 3 == 0) {
        o.brownout.enabled = true;
        o.brownout.alpha = 0.5;
        o.brownout.pressure_depth =
            3.0 + static_cast<double>(seed % 4);
        o.brownout.release_depth = 1.0;
        o.brownout.pressure_streak = 2;
        o.brownout.relief_streak = 2;
        o.brownout.min_priority = 1;
    }
    return o;
}

/** Mixed-kind randomized schedule shape for one replica. */
fault::FaultScheduleOptions
scheduleOptions(std::uint64_t seed)
{
    fault::FaultScheduleOptions o;
    o.incidents = static_cast<int>(seed % 5); // 0 = fault-free
    o.horizon_s = 2.0 + static_cast<double>(seed % 4);
    o.mean_outage_s = 0.2 + static_cast<double>(seed % 3) * 0.4;
    o.link_degrade_prob = static_cast<double>(seed % 3) * 0.2;
    o.slowdown_prob = static_cast<double>((seed / 3) % 3) * 0.25;
    o.mean_slowdown_s = 0.5 + static_cast<double>(seed % 2);
    o.max_multiplier = 2.0 + static_cast<double>(seed % 3);
    o.slowdown_group = 1 + static_cast<int>(seed % 2);
    return o;
}

std::vector<serve::Request>
chaosTrace(std::uint64_t seed)
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s =
        (seed % 3 == 0) ? 100.0 : (seed % 3 == 1 ? 20.0 : 5.0);
    wl.requests = 10 + static_cast<std::int64_t>(seed % 8);
    wl.prompt = { 128, 256 };
    wl.output = { 16, 32 };
    auto trace = serve::generateWorkload(wl, seed);
    // Two priority classes so an active brownout has a floor to
    // shed against.
    for (auto &r : trace)
        r.priority = r.id % 2 == 0 ? 1 : 0;
    return trace;
}

/** Bitwise comparison of two fleet replays; empty string = equal.
 *  Free-function (not EXPECT_*) so workers can call it. */
std::string
diffFleetMetrics(const FleetMetrics &a, const FleetMetrics &b)
{
    std::ostringstream os;
#define TF_CHAOS_FIELD(f)                                            \
    if (a.f != b.f)                                                  \
        os << #f << " " << a.f << " vs " << b.f << "; ";
    TF_CHAOS_FIELD(offered)
    TF_CHAOS_FIELD(completed)
    TF_CHAOS_FIELD(rejected)
    TF_CHAOS_FIELD(generated_tokens)
    TF_CHAOS_FIELD(routed)
    TF_CHAOS_FIELD(held_rejected)
    TF_CHAOS_FIELD(replica_downs)
    TF_CHAOS_FIELD(replica_ups)
    TF_CHAOS_FIELD(slowdown_transitions)
    TF_CHAOS_FIELD(breaker_opens)
    TF_CHAOS_FIELD(breaker_reopens)
    TF_CHAOS_FIELD(breaker_closes)
    TF_CHAOS_FIELD(breaker_open_s)
    TF_CHAOS_FIELD(brownout_activations)
    TF_CHAOS_FIELD(brownout_sheds)
    TF_CHAOS_FIELD(brownout_s)
    TF_CHAOS_FIELD(failover_drained)
    TF_CHAOS_FIELD(failover_reroutes)
    TF_CHAOS_FIELD(failover_exhausted)
    TF_CHAOS_FIELD(failover_wasted_tokens)
    TF_CHAOS_FIELD(autoscaler_ticks)
    TF_CHAOS_FIELD(scale_ups)
    TF_CHAOS_FIELD(scale_downs)
    TF_CHAOS_FIELD(peak_serving)
    TF_CHAOS_FIELD(makespan_s)
    TF_CHAOS_FIELD(completed_per_second)
    TF_CHAOS_FIELD(energy_j)
    TF_CHAOS_FIELD(chip_seconds)
#undef TF_CHAOS_FIELD
    if (a.replicas.size() != b.replicas.size()) {
        os << "replica count " << a.replicas.size() << " vs "
           << b.replicas.size() << "; ";
    } else {
        for (std::size_t i = 0; i < a.replicas.size(); ++i) {
            const auto &ra = a.replicas[i];
            const auto &rb = b.replicas[i];
            if (ra.offered != rb.offered
                || ra.completed != rb.completed
                || ra.rejected != rb.rejected
                || ra.generated_tokens != rb.generated_tokens
                || ra.makespan_s != rb.makespan_s)
                os << "replica " << i << " ledger differs; ";
        }
    }
    if (a.latency_s.count() != b.latency_s.count())
        os << "latency count differs; ";
    if (a.queue_wait_s.count() != b.queue_wait_s.count())
        os << "queue wait count differs; ";
    return os.str();
}

/** One replay inside its own registry; the report string rides
 *  along so core/thread agreement covers the observable record. */
struct Replay
{
    FleetMetrics metrics;
    std::string report;
};

Replay
replay(const FleetSimulator &fleet,
       const std::vector<serve::Request> &trace,
       const FleetRunOptions &run)
{
    obs::Registry reg;
    Replay r;
    {
        obs::ScopedRegistry scope(reg);
        r.metrics = fleet.run(trace, run);
    }
    r.report = obs::RunReport::capture(reg).toString();
    return r;
}

/** All five invariants for one seed; empty string = pass. */
std::string
runSeed(std::uint64_t seed)
{
    const auto cluster = multichip::edgeCluster(kChipsPerReplica);
    const auto cfg = model::t5Small();
    serve::WorkloadOptions wl; // simulator workload envelope
    wl.prompt = { 128, 256 };
    wl.output = { 16, 32 };
    const multichip::ShardSpec spec{ kChipsPerReplica, 1 };

    const auto trace = chaosTrace(seed);
    FleetRunOptions run;
    const auto policies = allPolicies();
    run.policy = policies[seed % policies.size()];
    run.seed = seed;
    run.faults.resize(kReplicas);
    for (int r = 0; r < kReplicas; ++r)
        run.faults[static_cast<std::size_t>(r)] =
            fault::generateFaultSchedule(
                scheduleOptions(seed + static_cast<std::uint64_t>(r)),
                kChipsPerReplica,
                seed * 31 + static_cast<std::uint64_t>(r));

    const auto fleetFor = [&](serve::SimCoreKind core,
                              int threads) {
        return FleetSimulator::uniform(
            kReplicas, cluster, spec, cfg, wl,
            fleetOptions(seed, core, threads));
    };
    // Invariant 4 (termination) is every one of these returning.
    const Replay legacy1 =
        replay(fleetFor(serve::SimCoreKind::Legacy, 1), trace, run);
    const Replay event1 = replay(
        fleetFor(serve::SimCoreKind::EventHeap, 1), trace, run);
    const Replay event4 = replay(
        fleetFor(serve::SimCoreKind::EventHeap, 4), trace, run);

    std::ostringstream err;
    // Invariant 1: conservation (run() also self-asserts).
    for (const Replay *r : { &legacy1, &event1, &event4 }) {
        if (r->metrics.completed + r->metrics.rejected
            != r->metrics.offered)
            err << "conservation leak; ";
        for (const auto &rep : r->metrics.replicas)
            if (rep.completed + rep.rejected != rep.offered)
                err << "replica conservation leak; ";
    }
    // Invariant 2: legacy vs event-heap, bitwise.
    const std::string cores =
        diffFleetMetrics(legacy1.metrics, event1.metrics);
    if (!cores.empty())
        err << "legacy-vs-event: " << cores;
    if (legacy1.report != event1.report)
        err << "legacy-vs-event report differs; ";
    // Invariant 3: threads 1 vs 4, bitwise.
    const std::string threads =
        diffFleetMetrics(event1.metrics, event4.metrics);
    if (!threads.empty())
        err << "threads-1v4: " << threads;
    if (event1.report != event4.report)
        err << "threads-1v4 report differs; ";

    // Invariant 5: a fault-tolerant server replay of replica 0's
    // schedule that applied every event (the trace outlived the
    // faults) must end on the exact initial spec — generated
    // schedules pair every fault with a recovery.
    fault::FaultServeOptions fo;
    fo.serve = fastServe(serve::SimCoreKind::EventHeap);
    fo.initial_spec = spec;
    fo.plan_threads = 1;
    const fault::FaultTolerantServer server(cluster, cfg, wl, fo);
    fault::FaultServeMetrics sm;
    {
        obs::Registry reg;
        obs::ScopedRegistry scope(reg);
        sm = server.run(trace, run.faults[0]);
    }
    if (sm.fault_events
        == static_cast<std::int64_t>(run.faults[0].events.size())
        && !sm.windows.empty()) {
        // Losses and slowdowns are generated paired, so the final
        // window always runs every chip at full speed.  Link
        // degrades have no paired recovery: the exact-spec restore
        // only applies when the fabric ended at full bandwidth.
        double final_link = 1.0;
        for (const auto &e : run.faults[0].events)
            if (e.kind == fault::FaultKind::LinkDegrade)
                final_link = e.factor;
        const auto &last = sm.windows.back();
        if (last.chips != kChipsPerReplica
            || last.slowdown != 1.0
            || last.link_scale != final_link)
            err << "recovery left the final window degraded "
                   "(chips "
                << last.chips << " slowdown " << last.slowdown
                << " link " << last.link_scale << "); ";
        if (final_link == 1.0
            && (last.spec.tp != spec.tp
                || last.spec.pp != spec.pp))
            err << "recovery did not restore the initial spec "
                   "(tp "
                << last.spec.tp << " pp " << last.spec.pp
                << "); ";
    }
    if (sm.serve.completed + sm.serve.rejected != sm.serve.offered)
        err << "server conservation leak; ";

    const std::string e = err.str();
    return e.empty() ? e
                     : "seed " + std::to_string(seed) + ": " + e;
}

TEST(Chaos, InvariantsHoldAcrossSeededFaultSchedules)
{
    // Warm the process-wide cost-table cache once so the parallel
    // constructions below don't race to calibrate.
    (void)FleetSimulator::uniform(
        1, multichip::edgeCluster(kChipsPerReplica),
        multichip::ShardSpec{ kChipsPerReplica, 1 },
        model::t5Small(),
        []() {
            serve::WorkloadOptions wl;
            wl.prompt = { 128, 256 };
            wl.output = { 16, 32 };
            return wl;
        }(),
        fleetOptions(1, serve::SimCoreKind::EventHeap, 1));

    std::vector<std::uint64_t> seeds;
    for (int s = 1; s <= kSeeds; ++s)
        seeds.push_back(static_cast<std::uint64_t>(s));
    ThreadPool pool(0);
    const std::vector<std::string> results =
        parallelMap(pool, seeds, [&](const std::uint64_t &seed) {
            return runSeed(seed);
        });
    std::vector<std::string> failures;
    for (const std::string &r : results)
        if (!r.empty())
            failures.push_back(r);
    EXPECT_TRUE(failures.empty()) << [&]() {
        std::ostringstream os;
        for (const auto &f : failures)
            os << f << "\n";
        return os.str();
    }();
    // The sweep really covered the advertised schedule count.
    EXPECT_GE(kSeeds * kReplicas, 200);
}

} // namespace
} // namespace transfusion::fleet
