/**
 * @file
 * Unit tests for the TileSeek MCTS: determinism, constraint
 * respect, optimality on exhaustively searchable spaces, and
 * behaviour on degenerate spaces.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "tileseek/mcts.hh"

namespace transfusion::tileseek
{
namespace
{

/** Three-level toy space with product values 1..5 per level. */
SearchSpace
toySpace()
{
    SearchSpace s;
    s.level_names = { "a", "b", "c" };
    s.choices = {
        { 1, 2, 3, 4, 5 },
        { 1, 2, 3, 4, 5 },
        { 1, 2, 3, 4, 5 },
    };
    return s;
}

TEST(ExhaustiveSearch, FindsGlobalOptimum)
{
    // cost = (a-3)^2 + (b-1)^2 + (c-5)^2, optimum (3,1,5).
    auto cost = [](const Assignment &x) {
        return std::pow(static_cast<double>(x[0]) - 3, 2)
            + std::pow(static_cast<double>(x[1]) - 1, 2)
            + std::pow(static_cast<double>(x[2]) - 5, 2);
    };
    auto feasible = [](const Assignment &) { return true; };
    const auto r = exhaustiveSearch(toySpace(), feasible, cost);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.best, (Assignment{ 3, 1, 5 }));
    EXPECT_DOUBLE_EQ(r.best_cost, 0.0);
    EXPECT_EQ(r.evaluations, 125);
}

TEST(ExhaustiveSearch, RespectsFeasibility)
{
    auto cost = [](const Assignment &x) {
        return static_cast<double>(x[0] + x[1] + x[2]);
    };
    // Only odd sums allowed.
    auto feasible = [](const Assignment &x) {
        return (x[0] + x[1] + x[2]) % 2 == 1;
    };
    const auto r = exhaustiveSearch(toySpace(), feasible, cost);
    ASSERT_TRUE(r.found);
    EXPECT_EQ((r.best[0] + r.best[1] + r.best[2]) % 2, 1);
    EXPECT_DOUBLE_EQ(r.best_cost, 3.0); // 1+1+1
}

TEST(ExhaustiveSearch, NothingFeasible)
{
    auto r = exhaustiveSearch(
        toySpace(), [](const Assignment &) { return false; },
        [](const Assignment &) { return 0.0; });
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.evaluations, 0);
}

TEST(ExhaustiveSearch, CapIsFatal)
{
    EXPECT_THROW(
        exhaustiveSearch(
            toySpace(), [](const Assignment &) { return true; },
            [](const Assignment &) { return 0.0; }, 10.0),
        FatalError);
}

TEST(Mcts, FindsOptimumOnSeparableObjective)
{
    auto cost = [](const Assignment &x) {
        return std::pow(static_cast<double>(x[0]) - 3, 2)
            + std::pow(static_cast<double>(x[1]) - 1, 2)
            + std::pow(static_cast<double>(x[2]) - 5, 2);
    };
    auto feasible = [](const Assignment &) { return true; };
    MctsOptions opts;
    opts.iterations = 600; // > 125 leaves: must find the optimum
    TileSeek seeker(toySpace(), feasible, cost, opts);
    const auto r = seeker.search();
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.best, (Assignment{ 3, 1, 5 }));
    EXPECT_GT(seeker.nodesExpanded(), 0);
}

TEST(Mcts, MatchesExhaustiveOnConstrainedSpace)
{
    // Feasible region: product of levels <= 12; maximize product
    // (cost = -product ... costs must be positive for the reward
    // shaping, so use 100 - product).
    auto cost = [](const Assignment &x) {
        return 100.0 - static_cast<double>(x[0] * x[1] * x[2]);
    };
    auto feasible = [](const Assignment &x) {
        return x[0] * x[1] * x[2] <= 12;
    };
    const auto truth =
        exhaustiveSearch(toySpace(), feasible, cost);
    MctsOptions opts;
    opts.iterations = 1000;
    const auto r =
        TileSeek(toySpace(), feasible, cost, opts).search();
    ASSERT_TRUE(r.found);
    EXPECT_DOUBLE_EQ(r.best_cost, truth.best_cost);
    EXPECT_LE(r.best[0] * r.best[1] * r.best[2], 12);
}

TEST(Mcts, DeterministicUnderFixedSeed)
{
    auto cost = [](const Assignment &x) {
        return static_cast<double>(
            (x[0] * 7 + x[1] * 13 + x[2] * 29) % 11) + 1.0;
    };
    auto feasible = [](const Assignment &) { return true; };
    MctsOptions opts;
    opts.iterations = 100;
    opts.seed = 77;
    const auto a = TileSeek(toySpace(), feasible, cost, opts)
                       .search();
    const auto b = TileSeek(toySpace(), feasible, cost, opts)
                       .search();
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Mcts, SeedChangesExploration)
{
    // Different seeds may visit different numbers of feasible
    // leaves (not necessarily different incumbents).
    auto cost = [](const Assignment &x) {
        return static_cast<double>(x[0] + x[1] + x[2]);
    };
    auto feasible = [](const Assignment &x) {
        return (x[0] + x[1]) % 2 == 0;
    };
    MctsOptions a_opts;
    a_opts.iterations = 50;
    a_opts.seed = 1;
    MctsOptions b_opts = a_opts;
    b_opts.seed = 999;
    const auto a = TileSeek(toySpace(), feasible, cost, a_opts)
                       .search();
    const auto b = TileSeek(toySpace(), feasible, cost, b_opts)
                       .search();
    // Both must respect feasibility and find something.
    ASSERT_TRUE(a.found);
    ASSERT_TRUE(b.found);
    EXPECT_EQ((a.best[0] + a.best[1]) % 2, 0);
    EXPECT_EQ((b.best[0] + b.best[1]) % 2, 0);
}

TEST(Mcts, InfeasibleSpaceReturnsNotFound)
{
    MctsOptions opts;
    opts.iterations = 64;
    const auto r = TileSeek(
        toySpace(), [](const Assignment &) { return false; },
        [](const Assignment &) { return 1.0; }, opts).search();
    EXPECT_FALSE(r.found);
    // Infeasible rollouts still consumed the evaluation budget:
    // one completed leaf per iteration.
    EXPECT_EQ(r.evaluations, 64);
}

TEST(Mcts, EvaluationsCountEveryCompletedLeaf)
{
    // Feasible or not, each iteration completes exactly one leaf.
    auto cost = [](const Assignment &x) {
        return static_cast<double>(x[0] + x[1] + x[2]);
    };
    auto feasible = [](const Assignment &x) {
        return (x[0] + x[1] + x[2]) % 2 == 1;
    };
    MctsOptions opts;
    opts.iterations = 200;
    const auto r =
        TileSeek(toySpace(), feasible, cost, opts).search();
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.evaluations, 200);
}

TEST(Mcts, SearchIsIdempotentOnOneInstance)
{
    auto cost = [](const Assignment &x) {
        return static_cast<double>(
            (x[0] * 5 + x[1] * 3 + x[2]) % 13) + 1.0;
    };
    auto feasible = [](const Assignment &) { return true; };
    MctsOptions opts;
    opts.iterations = 150;
    opts.seed = 31;
    TileSeek seeker(toySpace(), feasible, cost, opts);
    const auto a = seeker.search();
    const auto b = seeker.search();
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Mcts, RootParallelDeterministicPerThreadCount)
{
    auto cost = [](const Assignment &x) {
        return static_cast<double>(
            (x[0] * 7 + x[1] * 13 + x[2] * 29) % 17) + 1.0;
    };
    auto feasible = [](const Assignment &x) {
        return (x[0] + x[2]) % 2 == 0;
    };
    for (const int threads : { 1, 2, 8 }) {
        MctsOptions opts;
        opts.iterations = 120;
        opts.seed = 99;
        opts.threads = threads;
        const auto a =
            TileSeek(toySpace(), feasible, cost, opts).search();
        const auto b =
            TileSeek(toySpace(), feasible, cost, opts).search();
        ASSERT_TRUE(a.found) << "threads=" << threads;
        EXPECT_EQ(a.best, b.best) << "threads=" << threads;
        EXPECT_EQ(a.best_cost, b.best_cost)
            << "threads=" << threads;
        EXPECT_EQ(a.evaluations, b.evaluations)
            << "threads=" << threads;
        // Every tree runs the full budget and every leaf counts.
        EXPECT_EQ(a.evaluations,
                  static_cast<std::int64_t>(threads)
                      * opts.iterations);
    }
}

TEST(Mcts, RootParallelNeverWorseThanSerial)
{
    // Tree 0 forks from seed + 0, i.e. it *is* the serial search;
    // merging more trees by best cost can only improve the
    // incumbent or tie it.
    auto cost = [](const Assignment &x) {
        return static_cast<double>(
            (x[0] * 11 + x[1] * 5 + x[2] * 3) % 23) + 1.0;
    };
    auto feasible = [](const Assignment &x) {
        return x[0] != x[1];
    };
    MctsOptions serial_opts;
    serial_opts.iterations = 80;
    serial_opts.seed = 7;
    const auto serial =
        TileSeek(toySpace(), feasible, cost, serial_opts).search();
    ASSERT_TRUE(serial.found);
    for (const int threads : { 2, 4, 8 }) {
        MctsOptions opts = serial_opts;
        opts.threads = threads;
        const auto merged =
            TileSeek(toySpace(), feasible, cost, opts).search();
        ASSERT_TRUE(merged.found);
        EXPECT_LE(merged.best_cost, serial.best_cost)
            << "threads=" << threads;
    }
}

TEST(Mcts, RejectsNonPositiveThreads)
{
    MctsOptions opts;
    opts.threads = 0;
    EXPECT_THROW(TileSeek(toySpace(),
                          [](const Assignment &) { return true; },
                          [](const Assignment &) { return 1.0; },
                          opts),
                 FatalError);
}

TEST(Mcts, SingleLeafSpace)
{
    SearchSpace s;
    s.level_names = { "only" };
    s.choices = { { 42 } };
    MctsOptions opts;
    opts.iterations = 8;
    const auto r = TileSeek(
        s, [](const Assignment &) { return true; },
        [](const Assignment &) { return 5.0; }, opts).search();
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.best, (Assignment{ 42 }));
    EXPECT_DOUBLE_EQ(r.best_cost, 5.0);
}

TEST(Mcts, RejectsBadConfiguration)
{
    SearchSpace s = toySpace();
    MctsOptions opts;
    opts.iterations = 0;
    EXPECT_THROW(TileSeek(s, [](const Assignment &) { return true; },
                          [](const Assignment &) { return 1.0; },
                          opts),
                 FatalError);
    SearchSpace bad;
    EXPECT_THROW(TileSeek(bad,
                          [](const Assignment &) { return true; },
                          [](const Assignment &) { return 1.0; }),
                 FatalError);
}

TEST(SearchSpace, LeafCountAndValidation)
{
    const SearchSpace s = toySpace();
    EXPECT_DOUBLE_EQ(s.leafCount(), 125.0);
    SearchSpace bad;
    bad.level_names = { "x" };
    bad.choices = { {} };
    EXPECT_THROW(bad.validate(), FatalError);
    bad.choices = { { 0 } };
    EXPECT_THROW(bad.validate(), FatalError);
}

} // namespace
} // namespace transfusion::tileseek
