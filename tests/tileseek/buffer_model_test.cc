/**
 * @file
 * Unit tests for the Table 2 buffer-requirement formulas: exact
 * hand-computed values plus the monotonicity properties TileSeek's
 * pruning relies on.
 */

#include <gtest/gtest.h>

#include "arch/arch.hh"
#include "common/logging.hh"
#include "tileseek/buffer_model.hh"

namespace transfusion::tileseek
{
namespace
{

TileShape
unitShape()
{
    TileShape t;
    t.b = 2;
    t.d = 8;
    t.p = 4;
    t.m1 = 2;
    t.m0 = 3;
    t.s = 16;
    t.h = 2;
    t.e = 4;
    t.f = 4;
    t.p_prime = 4;
    return t;
}

TEST(BufferModel, QkvFormulaExact)
{
    const TileShape t = unitShape();
    // BD(4P + 3 M1 M0) + 3DHE + 2BHP
    const double expect = 2.0 * 8 * (4 * 4 + 3 * 2 * 3)
        + 3.0 * 8 * 2 * 4 + 2.0 * 2 * 2 * 4;
    EXPECT_DOUBLE_EQ(qkvBufferWords(t), expect);
}

TEST(BufferModel, MhaFormulaExact)
{
    const TileShape t = unitShape();
    // BHE(P + 2 M1 M0) + BHP(2 + 2F) + 4 M0 P' + 18 P'
    const double expect = 2.0 * 2 * 4 * (4 + 2 * 2 * 3)
        + 2.0 * 2 * 4 * (2 + 2 * 4) + 4.0 * 3 * 4 + 18.0 * 4;
    EXPECT_DOUBLE_EQ(mhaBufferWords(t), expect);
}

TEST(BufferModel, LayerNormFormulaExact)
{
    const TileShape t = unitShape();
    // 3BHFP + 4HFP'
    const double expect = 3.0 * 2 * 2 * 4 * 4 + 4.0 * 2 * 4 * 4;
    EXPECT_DOUBLE_EQ(layerNormBufferWords(t), expect);
}

TEST(BufferModel, FfnFormulaExact)
{
    const TileShape t = unitShape();
    // HF(2BP + S) + S(P + 2) + 2SP'
    const double expect = 2.0 * 4 * (2 * 2 * 4 + 16)
        + 16.0 * (4 + 2) + 2.0 * 16 * 4;
    EXPECT_DOUBLE_EQ(ffnBufferWords(t), expect);
}

TEST(BufferModel, PeakIsTheMaximum)
{
    const TileShape t = unitShape();
    const double peak = peakBufferWords(t);
    EXPECT_GE(peak, qkvBufferWords(t));
    EXPECT_GE(peak, mhaBufferWords(t));
    EXPECT_GE(peak, layerNormBufferWords(t));
    EXPECT_GE(peak, ffnBufferWords(t));
    EXPECT_TRUE(peak == qkvBufferWords(t)
                || peak == mhaBufferWords(t)
                || peak == layerNormBufferWords(t)
                || peak == ffnBufferWords(t));
}

TEST(BufferModel, MonotoneInEveryTileExtent)
{
    // Growing any tile extent can only grow each requirement.
    const TileShape base = unitShape();
    auto grow = [](TileShape t, std::int64_t TileShape::*field) {
        t.*field += 1;
        return t;
    };
    std::int64_t TileShape::*const fields[] = {
        &TileShape::b, &TileShape::d, &TileShape::p,
        &TileShape::m1, &TileShape::m0, &TileShape::s,
        &TileShape::p_prime,
    };
    for (auto f : fields) {
        const TileShape bigger = grow(base, f);
        EXPECT_GE(qkvBufferWords(bigger), qkvBufferWords(base));
        EXPECT_GE(mhaBufferWords(bigger), mhaBufferWords(base));
        EXPECT_GE(layerNormBufferWords(bigger),
                  layerNormBufferWords(base));
        EXPECT_GE(ffnBufferWords(bigger), ffnBufferWords(base));
    }
}

TEST(BufferModel, PPrimeDefinition)
{
    EXPECT_EQ(pPrime(100, 256), 100);
    EXPECT_EQ(pPrime(1000, 256), 256);
    EXPECT_EQ(pPrime(256, 256), 256);
    EXPECT_THROW(pPrime(0, 256), PanicError);
}

TEST(BufferModel, FitsBufferUsesElementBytes)
{
    TileShape t = unitShape();
    arch::ArchConfig a = arch::edgeArch();
    EXPECT_TRUE(fitsBuffer(t, a));
    // Shrink the buffer below the requirement: must fail.
    a.buffer_bytes = static_cast<std::int64_t>(
        peakBufferWords(t) * a.element_bytes) - 1;
    EXPECT_FALSE(fitsBuffer(t, a));
    a.buffer_bytes += 1;
    EXPECT_TRUE(fitsBuffer(t, a));
}

TEST(BufferModel, NonPositiveExtentPanics)
{
    TileShape t = unitShape();
    t.p = 0;
    EXPECT_THROW(qkvBufferWords(t), PanicError);
}

TEST(BufferModel, ToStringListsFields)
{
    const std::string s = unitShape().toString();
    EXPECT_NE(s.find("b=2"), std::string::npos);
    EXPECT_NE(s.find("p'=4"), std::string::npos);
}

} // namespace
} // namespace transfusion::tileseek
