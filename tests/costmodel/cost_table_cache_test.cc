/**
 * @file
 * Unit tests for the KeyBuilder fingerprints and the
 * CostTableCache: keys separate every labelled field, hits return
 * the first build's value verbatim with its observability replayed,
 * type confusion is fatal, and the RAII disable scope restores the
 * previous state even when nested.
 *
 * The tests run against the process-wide instance() (the one the
 * serve/multichip call sites share) under test-private keys, so
 * they neither disturb nor depend on entries other tests created.
 */

#include <string>

#include <gtest/gtest.h>

#include "costmodel/cache_key.hh"
#include "costmodel/cost_table_cache.hh"
#include "obs/obs.hh"

namespace transfusion::costmodel
{
namespace
{

TEST(CacheKey, LabelledFieldsNeverCollide)
{
    // Adjacent fields must not be able to swap content across the
    // boundary: strings are length-prefixed and every field is
    // labelled, so "ab" + "c" and "a" + "bc" fingerprint apart
    // even under identical labels.
    KeyBuilder a;
    a.add("x", "ab").add("y", "c");
    KeyBuilder b;
    b.add("x", "a").add("y", "bc");
    EXPECT_NE(a.str(), b.str());

    // Distinct types of the same numeric value stay distinct.
    KeyBuilder i64;
    i64.add("v", std::int64_t{ 1 });
    KeyBuilder u64;
    u64.add("v", std::uint64_t{ 1 });
    KeyBuilder dbl;
    dbl.add("v", 1.0);
    EXPECT_NE(i64.str(), u64.str());
    EXPECT_NE(i64.str(), dbl.str());
    EXPECT_NE(u64.str(), dbl.str());
}

TEST(CacheKey, DoublesFingerprintExactBits)
{
    // Hex-float rendering is exact: values that round-trip to the
    // same decimal at low precision still key apart.
    KeyBuilder a;
    a.add("v", 0.1);
    KeyBuilder b;
    b.add("v", 0.1 + 1e-17); // same printf("%.15g"), different bits
    KeyBuilder c;
    c.add("v", 0.1);
    EXPECT_EQ(a.str(), c.str());
    if (0.1 != 0.1 + 1e-17) {
        EXPECT_NE(a.str(), b.str());
    }
}

TEST(CostTableCache, HitReturnsTheFirstBuildAndCountsIt)
{
    auto &cache = CostTableCache::instance();
    const std::string key = "test/hit-returns-first-build";
    const auto before = cache.stats();

    int builds = 0;
    const auto build = [&]() {
        builds += 1;
        return 41 + builds;
    };
    const auto first =
        cache.getOrBuild<int>(key, build);
    const auto second =
        cache.getOrBuild<int>(key, build);
    EXPECT_EQ(builds, 1) << "second lookup must not rebuild";
    EXPECT_EQ(*first, 42);
    // Same object, not an equal copy: the cache shares the value.
    EXPECT_EQ(first.get(), second.get());

    const auto after = cache.stats();
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_EQ(after.entries, before.entries + 1);
}

TEST(CostTableCache, HitReplaysTheBuildObservability)
{
    auto &cache = CostTableCache::instance();
    const std::string key = "test/hit-replays-observability";

    const auto build = [&]() {
        obs::currentRegistry().counterAdd("test/built", 3);
        obs::currentRegistry().gaugeMax("test/peak", 7.0);
        return 1;
    };
    obs::Registry miss_reg;
    {
        obs::ScopedRegistry scope(miss_reg);
        (void)cache.getOrBuild<int>(key, build);
    }
    obs::Registry hit_reg;
    {
        obs::ScopedRegistry scope(hit_reg);
        (void)cache.getOrBuild<int>(key, build);
    }
    // The hit leaves the registry exactly as the miss did — the
    // within-process reproducibility the golden fleet test pins.
    const auto miss_snap = miss_reg.snapshot();
    const auto hit_snap = hit_reg.snapshot();
    EXPECT_EQ(miss_snap.counters.at("test/built"), 3);
    EXPECT_EQ(hit_snap.counters.at("test/built"), 3);
    EXPECT_DOUBLE_EQ(hit_snap.peaks.at("test/peak"), 7.0);
    EXPECT_EQ(miss_snap.counters.size(), hit_snap.counters.size());
}

TEST(CostTableCache, TypeConfusionIsFatalNotReinterpreted)
{
    auto &cache = CostTableCache::instance();
    const std::string key = "test/type-confusion";
    (void)cache.getOrBuild<int>(key, [] { return 5; });
    EXPECT_THROW((void)cache.getOrBuild<double>(
                     key, [] { return 5.0; }),
                 PanicError);
}

TEST(CostTableCache, DisabledScopeBypassesAndRestores)
{
    auto &cache = CostTableCache::instance();
    const std::string key = "test/disabled-scope";
    ASSERT_TRUE(cache.enabled());

    int builds = 0;
    const auto build = [&]() {
        builds += 1;
        return builds;
    };
    {
        CostTableCacheDisabled off;
        EXPECT_FALSE(cache.enabled());
        // Nested scopes restore to the *previous* state, not to a
        // hard-coded default.
        {
            CostTableCacheDisabled inner;
            EXPECT_FALSE(cache.enabled());
        }
        EXPECT_FALSE(cache.enabled());
        // Disabled lookups build every time and never populate.
        EXPECT_EQ(*cache.getOrBuild<int>(key, build), 1);
        EXPECT_EQ(*cache.getOrBuild<int>(key, build), 2);
    }
    EXPECT_TRUE(cache.enabled());
    // Re-enabled, the key was never stored: the next lookup is a
    // miss that finally populates it.
    EXPECT_EQ(*cache.getOrBuild<int>(key, build), 3);
    EXPECT_EQ(*cache.getOrBuild<int>(key, build), 3);
    EXPECT_EQ(builds, 3);
}

} // namespace
} // namespace transfusion::costmodel
