/**
 * @file
 * Randomized property tests for the DRAM traffic primitives: on
 * hundreds of random problem shapes, traffic must respect the
 * compulsory lower bound, behave monotonically in problem size and
 * anti-monotonically in buffer size, and the fused-stack accounting
 * must stay internally consistent.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "costmodel/traffic.hh"

namespace transfusion::costmodel
{
namespace
{

TEST(TrafficFuzz, GemmBoundsAndMonotonicity)
{
    Rng rng(0x6E);
    for (int trial = 0; trial < 400; ++trial) {
        const double n = std::pow(2.0, rng.nextDouble(2, 16));
        const double k = std::pow(2.0, rng.nextDouble(2, 14));
        const double m = std::pow(2.0, rng.nextDouble(2, 16));
        const double w = std::pow(2.0, rng.nextDouble(10, 23));

        const double t = gemmTrafficWords(n, k, m, w);
        // Compulsory floor.
        ASSERT_GE(t, n * k + k * m + n * m - 1e-9);
        // Monotone in every problem dimension.
        ASSERT_GE(gemmTrafficWords(2 * n, k, m, w), t);
        ASSERT_GE(gemmTrafficWords(n, 2 * k, m, w), t);
        ASSERT_GE(gemmTrafficWords(n, k, 2 * m, w), t);
        // Anti-monotone in buffer size.
        ASSERT_LE(gemmTrafficWords(n, k, m, 4 * w), t + 1e-9);
    }
}

TEST(TrafficFuzz, AttentionStreamBounds)
{
    Rng rng(0xA7);
    for (int trial = 0; trial < 400; ++trial) {
        const double p = std::pow(2.0, rng.nextDouble(2, 18));
        const double m = std::pow(2.0, rng.nextDouble(2, 18));
        const double e = std::pow(2.0, rng.nextDouble(3, 8));
        const double w = std::pow(2.0, rng.nextDouble(12, 23));

        const double t = attentionStreamWords(p, m, e, e, w);
        // Must at least read Q and K/V once and write the output.
        ASSERT_GE(t, p * e + 2 * m * e + p * e - 1e-9);
        // A bigger buffer never increases streaming.
        ASSERT_LE(attentionStreamWords(p, m, e, e, 8 * w),
                  t + 1e-9);
        // More context never decreases streaming.
        ASSERT_GE(attentionStreamWords(p, 2 * m, e, e, w),
                  t - 1e-9);
    }
}

TEST(TrafficFuzz, FusedStackConsistency)
{
    Rng rng(0xF5);
    for (int trial = 0; trial < 300; ++trial) {
        FusedStackShape s;
        s.batch = std::pow(2.0, rng.nextDouble(0, 7));
        s.seq = std::pow(2.0, rng.nextDouble(8, 20));
        s.d_model = 64.0 * (1 + rng.nextBelow(64));
        s.ffn_hidden = s.d_model * 4;
        const double w = std::pow(2.0, rng.nextDouble(18, 24));

        OuterTile tile;
        tile.batch_tile = 1;
        tile.seq_tile = static_cast<std::int64_t>(
            std::pow(2.0, rng.nextDouble(4, 11)));

        const auto t = fusedStackTraffic(s, tile, w);
        // Every component non-negative; total is their sum.
        ASSERT_GE(t.input_words, 0.0);
        ASSERT_GE(t.kv_spill_words, 0.0);
        ASSERT_GE(t.kv_stream_words, 0.0);
        ASSERT_GE(t.output_words, 0.0);
        ASSERT_GE(t.weight_words, 0.0);
        ASSERT_NEAR(t.total(),
                    t.input_words + t.kv_spill_words
                        + t.kv_stream_words + t.output_words
                        + t.weight_words,
                    1e-6 * t.total());
        // The K/V stream can never undercut one full read.
        ASSERT_GE(t.kv_stream_words,
                  2.0 * s.batch * s.contextLen() * s.d_model
                      - 1e-6);

        // A larger sequence tile never increases total traffic.
        OuterTile bigger = tile;
        bigger.seq_tile *= 2;
        ASSERT_LE(fusedStackTraffic(s, bigger, w).total(),
                  t.total() + 1e-6 * t.total());

        // The KV cache can only remove traffic.
        FusedStackShape cached = s;
        cached.kv_precomputed = true;
        ASSERT_LE(fusedStackTraffic(cached, tile, w).total(),
                  t.total() + 1e-9);
    }
}

} // namespace
} // namespace transfusion::costmodel
