/**
 * @file
 * Unit tests for the DRAM traffic primitives: GEMM roofline, fused
 * attention streaming, and the fused-stack model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "costmodel/roofline.hh"
#include "costmodel/traffic.hh"

namespace transfusion::costmodel
{
namespace
{

TEST(GemmTraffic, CompulsoryFloorForSmallProblems)
{
    // Tiny GEMM in a huge buffer: just read A, B and write C.
    const double t = gemmTrafficWords(8, 4, 8, 1e9);
    EXPECT_DOUBLE_EQ(t, 8 * 4 + 4 * 8 + 8 * 8);
}

TEST(GemmTraffic, HongKungBoundForLargeProblems)
{
    // Large cube, small buffer: the blocked bound dominates.
    const double n = 1 << 14, k = 1 << 14, m = 1 << 14;
    const double w = 1 << 20;
    const double t = gemmTrafficWords(n, k, m, w);
    EXPECT_DOUBLE_EQ(t, 2.0 * n * k * m / 1024.0);
    EXPECT_GT(t, n * k + k * m + n * m);
}

TEST(GemmTraffic, MonotoneInBufferSize)
{
    const double small = gemmTrafficWords(4096, 4096, 4096, 1 << 16);
    const double large = gemmTrafficWords(4096, 4096, 4096, 1 << 22);
    EXPECT_GT(small, large);
}

TEST(GemmTraffic, RejectsBadArguments)
{
    EXPECT_THROW(gemmTrafficWords(0, 1, 1, 10), PanicError);
    EXPECT_THROW(gemmTrafficWords(1, 1, 1, 0), PanicError);
}

TEST(AttentionStream, KvResidentReadsEverythingOnce)
{
    // K+V fit in half the buffer: q + kv + out.
    const double p = 64, m = 128, e = 16, f = 16;
    const double t = attentionStreamWords(p, m, e, f, 1 << 20);
    EXPECT_DOUBLE_EQ(t, p * e + m * (e + f) + p * f);
}

TEST(AttentionStream, KvRestreamsPerQChunk)
{
    // K/V too large: streamed once per resident Q chunk.
    const double p = 1 << 16, m = 1 << 16, e = 128, f = 128;
    const double w = 1 << 20; // resident = 2^19 words
    const double q_words = p * e;              // 2^23
    const double chunks = std::ceil(q_words / (w / 2)); // 16
    const double t = attentionStreamWords(p, m, e, f, w);
    EXPECT_DOUBLE_EQ(t, q_words + chunks * m * (e + f) + p * f);
}

TEST(AttentionStream, QuadraticGrowthWhenNotResident)
{
    // Doubling the sequence roughly quadruples K/V streaming.
    const double e = 128, f = 128, w = 1 << 20;
    const double t1 = attentionStreamWords(1 << 16, 1 << 16, e, f,
                                           w);
    const double t2 = attentionStreamWords(1 << 17, 1 << 17, e, f,
                                           w);
    EXPECT_NEAR(t2 / t1, 4.0, 0.2);
}

TEST(FusedStack, ComponentAccounting)
{
    FusedStackShape s;
    s.batch = 4;
    s.seq = 1024;
    s.d_model = 64;
    s.ffn_hidden = 128;
    const double act = s.batch * s.seq * s.d_model;

    // Huge buffer: K/V of a batch group and the weights all fit.
    const auto t = fusedStackTraffic(s, { 1, 256 }, 1e12);
    EXPECT_DOUBLE_EQ(t.input_words, 2 * act);
    EXPECT_DOUBLE_EQ(t.kv_spill_words, 2 * act);
    EXPECT_DOUBLE_EQ(t.kv_stream_words, 2 * act);
    EXPECT_DOUBLE_EQ(t.output_words, act);
    EXPECT_DOUBLE_EQ(t.weight_words,
                     3 * 64 * 64 + 2 * 64 * 128 + 128 + 64);
    EXPECT_DOUBLE_EQ(t.total(),
                     t.input_words + t.kv_spill_words
                         + t.kv_stream_words + t.output_words
                         + t.weight_words);
}

TEST(FusedStack, KvRestreamScalesWithSeqOverTile)
{
    FusedStackShape s;
    s.batch = 2;
    s.seq = 4096;
    s.d_model = 512;
    s.ffn_hidden = 1024;
    const double act = s.batch * s.seq * s.d_model;

    // Small buffer: K/V never resident, weights never resident.
    const auto t = fusedStackTraffic(s, { 1, 128 }, 1 << 16);
    EXPECT_DOUBLE_EQ(t.kv_stream_words,
                     2.0 * act * (s.seq / 128.0));
}

TEST(FusedStack, WeightRestreamPerOuterTile)
{
    FusedStackShape s;
    s.batch = 2;
    s.seq = 4096;
    s.d_model = 512;
    s.ffn_hidden = 1024;
    const double weight_words =
        3 * 512 * 512 + 2 * 512 * 1024 + 1024 + 512;
    const auto t = fusedStackTraffic(s, { 1, 128 }, 1 << 16);
    const double n_outer = 2.0 * (4096.0 / 128.0);
    EXPECT_DOUBLE_EQ(t.weight_words, weight_words * n_outer);
}

TEST(FusedStack, LargerSeqTileNeverIncreasesTraffic)
{
    FusedStackShape s;
    s.batch = 8;
    s.seq = 8192;
    s.d_model = 256;
    s.ffn_hidden = 512;
    double prev = 1e300;
    for (std::int64_t pt : { 64, 128, 256, 512 }) {
        const double total =
            fusedStackTraffic(s, { 1, pt }, 1 << 18).total();
        EXPECT_LE(total, prev) << "pt=" << pt;
        prev = total;
    }
}

TEST(Roofline, OverlapAndBounds)
{
    EXPECT_DOUBLE_EQ(overlapped(2.0, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(overlapped(5.0, 3.0), 5.0);
    EXPECT_TRUE(memoryBound(1.0, 2.0));
    EXPECT_FALSE(memoryBound(2.0, 1.0));
}

TEST(Roofline, DramSeconds)
{
    auto a = arch::cloudArch();
    EXPECT_DOUBLE_EQ(dramSeconds(a, 400e9), 1.0);
}

} // namespace
} // namespace transfusion::costmodel
