/**
 * @file
 * Unit tests for the access-counting energy model.
 */

#include <gtest/gtest.h>

#include "costmodel/energy.hh"
#include "model/cascades.hh"

namespace transfusion::costmodel
{
namespace
{

using einsum::CombineOp;
using einsum::DimEnv;
using einsum::Einsum;
using einsum::ReduceOp;
using einsum::UnaryOp;

TEST(EnergyBreakdown, SumAndScale)
{
    EnergyBreakdown e{ 1, 2, 3, 4 };
    EXPECT_DOUBLE_EQ(e.total(), 10.0);
    const auto s = e.scaled(2.0);
    EXPECT_DOUBLE_EQ(s.dram_j, 2.0);
    EXPECT_DOUBLE_EQ(s.total(), 20.0);
    EnergyBreakdown acc;
    acc += e;
    acc += e;
    EXPECT_DOUBLE_EQ(acc.total(), 20.0);
}

TEST(DramEnergy, ProportionalToBytes)
{
    const auto a = arch::cloudArch();
    const double j = dramEnergy(a, 1e9);
    EXPECT_DOUBLE_EQ(j, 1e9 * a.energy.dram_pj_per_byte * 1e-12);
    EXPECT_DOUBLE_EQ(dramEnergy(a, 0), 0.0);
}

TEST(OpOnChipEnergy, VectorOpStreamsInputsAndOutputs)
{
    const auto a = arch::cloudArch();
    DimEnv env{ { "m", 1000 } };
    Einsum e("E", { "m" });
    e.input("I", { "m" }).unary(UnaryOp::Exp);

    const auto br = opOnChipEnergy(e, env, a);
    // 1000 PE ops, 3000 RF accesses, 2000 buffer words.
    EXPECT_DOUBLE_EQ(br.pe_j, 1000 * a.energy.mac_pj * 1e-12);
    EXPECT_DOUBLE_EQ(br.rf_j, 3000 * a.energy.reg_pj * 1e-12);
    EXPECT_DOUBLE_EQ(br.buffer_j,
                     2000 * a.energy.buffer_pj * 1e-12);
    EXPECT_DOUBLE_EQ(br.dram_j, 0.0);
}

TEST(OpOnChipEnergy, MatrixOpGetsSystolicReuse)
{
    const auto a = arch::cloudArch();
    DimEnv env{ { "m", 256 }, { "k", 256 }, { "n", 256 } };
    Einsum z("Z", { "m", "n" });
    z.input("A", { "m", "k" }).input("B", { "k", "n" })
        .combine(CombineOp::Mul).reduce(ReduceOp::Sum);

    const auto br = opOnChipEnergy(z, env, a);
    const double load = 256.0 * 256 * 256;
    const double reuse = 256.0; // min(rows, cols)
    const double words = load / reuse + 256.0 * 256;
    EXPECT_DOUBLE_EQ(br.buffer_j,
                     words * a.energy.buffer_pj * 1e-12);
}

TEST(OpOnChipEnergy, RfForwardingMovesBufferEnergyToRf)
{
    const auto a = arch::cloudArch();
    DimEnv env{ { "m", 1000 } };
    Einsum e("E", { "m" });
    e.input("I", { "m" }).unary(UnaryOp::Exp);

    OnChipParams fused;
    fused.rf_forward_fraction = 0.5;
    const auto plain = opOnChipEnergy(e, env, a);
    const auto fwd = opOnChipEnergy(e, env, a, fused);
    EXPECT_LT(fwd.buffer_j, plain.buffer_j);
    EXPECT_GT(fwd.rf_j, plain.rf_j);
    // RF access is cheaper than buffer access, so total drops.
    EXPECT_LT(fwd.total(), plain.total());
    EXPECT_DOUBLE_EQ(fwd.pe_j, plain.pe_j);
}

TEST(CascadeOnChipEnergy, SumsOverOps)
{
    const auto a = arch::cloudArch();
    const auto cfg = model::bertBase();
    const auto dims = model::makeDims(cfg, 64, 64, 2);
    const auto cascade =
        model::buildCascade(model::LayerKind::Ffn, cfg);

    EnergyBreakdown by_hand;
    for (const auto &op : cascade.ops())
        by_hand += opOnChipEnergy(op, dims, a);
    const auto total = cascadeOnChipEnergy(cascade, dims, a);
    EXPECT_DOUBLE_EQ(total.total(), by_hand.total());
    EXPECT_GT(total.pe_j, 0.0);
}

TEST(CascadeOnChipEnergy, RobustToConstantPerturbation)
{
    // DESIGN.md property: the qualitative ordering (fused cheaper
    // on-chip than unfused thanks to RF forwarding) survives +-2x
    // changes to the energy constants.
    const auto cfg = model::bertBase();
    const auto dims = model::makeDims(cfg, 64, 64, 2);
    const auto cascade =
        model::buildCascade(model::LayerKind::LayerNorm, cfg);
    OnChipParams fused;
    fused.rf_forward_fraction = 0.6;

    for (double scale : { 0.5, 1.0, 2.0 }) {
        auto a = arch::cloudArch();
        a.energy.buffer_pj *= scale;
        a.energy.reg_pj *= scale;
        a.energy.mac_pj *= scale;
        const double plain =
            cascadeOnChipEnergy(cascade, dims, a).total();
        const double fwd =
            cascadeOnChipEnergy(cascade, dims, a, fused).total();
        EXPECT_LT(fwd, plain) << "scale=" << scale;
    }
}

} // namespace
} // namespace transfusion::costmodel
