/**
 * @file
 * Unit tests for the Eq. 40-42 latency model and PE derating.
 */

#include <gtest/gtest.h>

#include "arch/arch.hh"
#include "costmodel/latency.hh"

namespace transfusion::costmodel
{
namespace
{

using einsum::CombineOp;
using einsum::DimEnv;
using einsum::Einsum;
using einsum::ReduceOp;
using einsum::UnaryOp;

Einsum
gemmOp()
{
    Einsum z("Z", { "m", "n" });
    z.input("A", { "m", "k" }).input("B", { "k", "n" })
        .combine(CombineOp::Mul).reduce(ReduceOp::Sum);
    return z;
}

Einsum
vectorOp()
{
    Einsum e("E", { "m" });
    e.input("I", { "m" }).unary(UnaryOp::Exp);
    return e;
}

TEST(EffectivePes, MatrixOn2dIsFullArray)
{
    const auto a = arch::cloudArch();
    EXPECT_DOUBLE_EQ(effectivePes(gemmOp(), a, PeTarget::Array2d),
                     65536.0);
}

TEST(EffectivePes, VectorOn2dIsLaneCapped)
{
    const auto cloud = arch::cloudArch();
    LatencyParams p;
    EXPECT_DOUBLE_EQ(
        effectivePes(vectorOp(), cloud, PeTarget::Array2d, p),
        p.vector_on_2d_max_lanes);
    // A small edge array is below the cap: full width.
    const auto edge = arch::edgeArch();
    EXPECT_DOUBLE_EQ(
        effectivePes(vectorOp(), edge, PeTarget::Array2d, p),
        256.0);
}

TEST(EffectivePes, MatrixOn1dIsDerated)
{
    const auto a = arch::cloudArch();
    LatencyParams p;
    EXPECT_DOUBLE_EQ(
        effectivePes(gemmOp(), a, PeTarget::Array1d, p),
        256.0 * p.matrix_on_1d_efficiency);
}

TEST(EffectivePes, VectorOn1dIsNative)
{
    const auto a = arch::cloudArch();
    EXPECT_DOUBLE_EQ(
        effectivePes(vectorOp(), a, PeTarget::Array1d), 256.0);
}

TEST(ComputeCycles, Eq41Division)
{
    EXPECT_DOUBLE_EQ(computeCycles(1000.0, 10.0), 100.0);
    EXPECT_DOUBLE_EQ(computeCycles(0.0, 10.0), 0.0);
}

TEST(OpLatency, Eq42EndToEnd)
{
    // Hand computation: load = 32*16*8 = 4096 MACs on the cloud
    // 2D array (65536 PEs) at 940 MHz.
    const auto a = arch::cloudArch();
    DimEnv env{ { "m", 32 }, { "n", 16 }, { "k", 8 } };
    const double lat = opLatencySeconds(gemmOp(), env, a,
                                        PeTarget::Array2d);
    EXPECT_DOUBLE_EQ(lat, (4096.0 / 65536.0) / 940e6);
}

TEST(OpLatency, VectorOpFasterOn1dThanDeratedUse)
{
    // On the cloud, a vector op on the lane-capped 2D array beats
    // the 256-wide 1D array exactly when the cap exceeds 256.
    const auto a = arch::cloudArch();
    DimEnv env{ { "m", 1 << 20 } };
    LatencyParams p;
    const double on2d = opLatencySeconds(vectorOp(), env, a,
                                         PeTarget::Array2d, p);
    const double on1d = opLatencySeconds(vectorOp(), env, a,
                                         PeTarget::Array1d, p);
    EXPECT_LT(on2d, on1d);
    EXPECT_DOUBLE_EQ(on1d / on2d,
                     p.vector_on_2d_max_lanes / 256.0);
}

TEST(OpLatency, ScalesInverselyWithClock)
{
    auto a = arch::cloudArch();
    DimEnv env{ { "m", 1024 } };
    const double base = opLatencySeconds(vectorOp(), env, a,
                                         PeTarget::Array1d);
    a.clock_hz *= 2.0;
    const double faster = opLatencySeconds(vectorOp(), env, a,
                                           PeTarget::Array1d);
    EXPECT_DOUBLE_EQ(base / faster, 2.0);
}

TEST(PeTargetNames, Printable)
{
    EXPECT_EQ(toString(PeTarget::Array2d), "2D");
    EXPECT_EQ(toString(PeTarget::Array1d), "1D");
}

} // namespace
} // namespace transfusion::costmodel
