/**
 * @file
 * Unit tests for the TileSeek workload bridge: search-space
 * construction, feasibility (Table 2 + context bound), the naive
 * LayerFuse tile, and MCTS tile selection quality.
 */

#include <gtest/gtest.h>

#include "costmodel/traffic.hh"
#include "schedule/tiling.hh"

namespace transfusion::schedule
{
namespace
{

TEST(TilingSpace, LevelsAndCandidates)
{
    const auto arch = arch::cloudArch();
    const auto cfg = model::bertBase();
    const auto space = buildTilingSpace(arch, cfg, 4096);
    ASSERT_EQ(space.depth(), 6u);
    EXPECT_EQ(space.level_names,
              (std::vector<std::string>{ "b", "d", "p", "m0", "m1",
                                         "s" }));
    // Every candidate divides its full extent (legal tilings only).
    for (auto b : space.choices[0])
        EXPECT_EQ(cfg.batch % b, 0);
    for (auto d : space.choices[1])
        EXPECT_EQ(cfg.d_model % d, 0);
    for (auto p : space.choices[2]) {
        EXPECT_EQ(4096 % p, 0);
        EXPECT_LE(p, 4096);
    }
    for (auto s : space.choices[5])
        EXPECT_EQ(cfg.ffn_hidden % s, 0);
}

TEST(TilingSpace, AssignmentRoundTrip)
{
    const auto arch = arch::edgeArch();
    const auto cfg = model::t5Small();
    const tileseek::Assignment a{ 2, 64, 128, 16, 4, 256 };
    const auto t = assignmentToTile(a, arch, cfg);
    EXPECT_EQ(t.b, 2);
    EXPECT_EQ(t.d, 64);
    EXPECT_EQ(t.p, 128);
    EXPECT_EQ(t.m0, 16);
    EXPECT_EQ(t.m1, 4);
    EXPECT_EQ(t.s, 256);
    EXPECT_EQ(t.h, cfg.heads);
    EXPECT_EQ(t.e, cfg.head_dim);
    // P' = min(p, rows) = min(128, 16).
    EXPECT_EQ(t.p_prime, 16);
}

TEST(TileFeasible, ContextBound)
{
    const auto arch = arch::cloudArch();
    const auto cfg = model::t5Small();
    tileseek::TileShape t = assignmentToTile(
        { 1, 64, 64, 64, 4, 128 }, arch, cfg);
    // m1 * m0 = 256 exceeds a 128-long sequence.
    EXPECT_FALSE(tileFeasible(t, arch, 128));
    EXPECT_TRUE(tileFeasible(t, arch, 1024));
}

TEST(NaiveTile, FeasibleOnEveryArchModelPoint)
{
    for (const auto &arch_name :
         { "cloud", "edge", "edge32", "edge64" }) {
        const auto arch = arch::archByName(arch_name);
        for (const auto &cfg : model::allModels()) {
            for (std::int64_t seq : { std::int64_t{1} << 10,
                                      std::int64_t{1} << 16 }) {
                const auto t = naiveTile(arch, cfg, seq);
                EXPECT_TRUE(tileFeasible(t, arch, seq))
                    << arch_name << " " << cfg.name << " P=" << seq;
                EXPECT_EQ(t.b, 1);
            }
        }
    }
}

TEST(NaiveTile, PrefersLargeSequenceTiles)
{
    // On the roomy cloud buffer the naive tile should reach a
    // respectable sequence tile for a small model.
    const auto t =
        naiveTile(arch::cloudArch(), model::t5Small(), 65536);
    EXPECT_GE(t.p, 256);
}

TEST(SeekTile, FeasibleAndNoWorseThanNaive)
{
    const auto arch = arch::cloudArch();
    const auto cfg = model::llama3_8b();
    const std::int64_t seq = 65536;

    const auto naive = naiveTile(arch, cfg, seq);
    tileseek::MctsOptions opts;
    opts.iterations = 1024;
    const auto sought = seekTile(arch, cfg, seq, 1.0, opts);
    EXPECT_TRUE(tileFeasible(sought, arch, seq));

    // Compare the traffic both tiles imply.
    costmodel::FusedStackShape shape;
    shape.batch = static_cast<double>(cfg.batch);
    shape.seq = static_cast<double>(seq);
    shape.d_model = static_cast<double>(cfg.d_model);
    shape.ffn_hidden = static_cast<double>(cfg.ffn_hidden);
    const double w = static_cast<double>(arch.buffer_bytes)
        / arch.element_bytes;
    const double naive_traffic = costmodel::fusedStackTraffic(
        shape, { naive.b, naive.p }, w).total();
    const double sought_traffic = costmodel::fusedStackTraffic(
        shape, { sought.b, sought.p }, w).total();
    EXPECT_LE(sought_traffic, naive_traffic * 1.05);
}

TEST(SeekTile, DeterministicUnderSeed)
{
    const auto arch = arch::edgeArch();
    const auto cfg = model::bertBase();
    tileseek::MctsOptions opts;
    opts.iterations = 256;
    opts.seed = 5;
    const auto a = seekTile(arch, cfg, 4096, 1.0, opts);
    const auto b = seekTile(arch, cfg, 4096, 1.0, opts);
    EXPECT_EQ(a.toString(), b.toString());
}

} // namespace
} // namespace transfusion::schedule
