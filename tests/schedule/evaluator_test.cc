/**
 * @file
 * Unit tests for the end-to-end evaluator: bookkeeping invariants
 * (positive metrics, roofline consistency, work conservation) and
 * the qualitative orderings every strategy must respect.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "schedule/evaluator.hh"

namespace transfusion::schedule
{
namespace
{

EvaluatorOptions
fastOptions()
{
    EvaluatorOptions o;
    o.mcts.iterations = 256; // keep unit tests quick
    return o;
}

TEST(Strategy, NamesAndOrder)
{
    const auto all = allStrategies();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(toString(all[0]), "Unfused");
    EXPECT_EQ(toString(all[1]), "FLAT");
    EXPECT_EQ(toString(all[2]), "FuseMax");
    EXPECT_EQ(toString(all[3]), "FuseMax+LayerFuse");
    EXPECT_EQ(toString(all[4]), "TransFusion");
    EXPECT_FALSE(usesLayerFusion(StrategyKind::FuseMax));
    EXPECT_TRUE(usesLayerFusion(StrategyKind::TransFusion));
}

TEST(Evaluator, MetricsArePositiveAndConsistent)
{
    Evaluator eval(arch::cloudArch(), model::bertBase(), 4096,
                   fastOptions());
    for (auto kind : allStrategies()) {
        const auto r = eval.evaluate(kind);
        double layer_latency = 0;
        for (const auto &m : r.layers) {
            EXPECT_GT(m.latency_s, 0.0) << toString(kind);
            EXPECT_GE(m.dram_bytes, 0.0);
            EXPECT_GT(m.compute_s, 0.0);
            // Roofline: latency at least compute and at least DRAM.
            EXPECT_GE(m.latency_s, m.compute_s - 1e-12);
            EXPECT_GE(m.latency_s, m.dram_s - 1e-12);
            EXPECT_GT(m.energy.total(), 0.0);
            layer_latency += m.latency_s;
        }
        EXPECT_NEAR(r.total.latency_s, layer_latency,
                    1e-9 * layer_latency);
    }
}

TEST(Evaluator, WorkIsConservedAcrossStrategies)
{
    // Every strategy executes the same mathematics; only the
    // Unfused softmax differs (multi-pass adds vector work).
    Evaluator eval(arch::cloudArch(), model::bertBase(), 2048,
                   fastOptions());
    const auto fuse = eval.evaluate(StrategyKind::FuseMax);
    const auto tf = eval.evaluate(StrategyKind::TransFusion);
    const double fuse_ops = fuse.total.ops_2d + fuse.total.ops_1d;
    const double tf_ops = tf.total.ops_2d + tf.total.ops_1d;
    EXPECT_NEAR(fuse_ops, tf_ops, 1e-6 * fuse_ops);
}

TEST(Evaluator, TransFusionWinsEndToEnd)
{
    for (const auto *arch_name : { "cloud", "edge" }) {
        Evaluator eval(arch::archByName(arch_name),
                       model::bertBase(), 8192, fastOptions());
        const auto base = eval.evaluate(StrategyKind::Unfused);
        const auto tf = eval.evaluate(StrategyKind::TransFusion);
        EXPECT_LT(tf.total.latency_s, base.total.latency_s)
            << arch_name;
        EXPECT_LT(tf.total.energy.total(),
                  base.total.energy.total())
            << arch_name;
    }
}

TEST(Evaluator, StrategyLatencyOrdering)
{
    // The paper's ordering: Unfused >= FLAT >= FuseMax >=
    // LayerFuse >= TransFusion (latency, modulo small noise).
    Evaluator eval(arch::cloudArch(), model::llama3_8b(), 16384,
                   fastOptions());
    const double unfused =
        eval.evaluate(StrategyKind::Unfused).total.latency_s;
    const double flat =
        eval.evaluate(StrategyKind::Flat).total.latency_s;
    const double fusemax =
        eval.evaluate(StrategyKind::FuseMax).total.latency_s;
    const double layerfuse =
        eval.evaluate(StrategyKind::FuseMaxLayerFuse)
            .total.latency_s;
    const double tf =
        eval.evaluate(StrategyKind::TransFusion).total.latency_s;
    EXPECT_GE(unfused, flat);
    EXPECT_GE(flat, fusemax);
    EXPECT_GE(fusemax * 1.02, layerfuse);
    EXPECT_GT(layerfuse, tf);
}

TEST(Evaluator, LayerNormTrafficFreeUnderFullFusion)
{
    // When full fusion is chosen, LayerNorm reads and writes
    // nothing off-chip; under selective fusion it still moves at
    // most the two activation tensors.
    Evaluator eval(arch::cloudArch(), model::bertBase(), 1024,
                   fastOptions());
    const auto tf = eval.evaluate(StrategyKind::TransFusion);
    const auto unfused = eval.evaluate(StrategyKind::Unfused);
    EXPECT_LT(tf.layer(model::LayerKind::LayerNorm).dram_bytes,
              unfused.layer(model::LayerKind::LayerNorm)
                  .dram_bytes);
}

TEST(Evaluator, UtilizationsAreFractions)
{
    const auto a = arch::edgeArch();
    Evaluator eval(a, model::t5Small(), 4096, fastOptions());
    for (auto kind : allStrategies()) {
        const auto r = eval.evaluate(kind);
        EXPECT_GE(r.utilization2d(a), 0.0);
        EXPECT_LE(r.utilization2d(a), 1.0 + 1e-9) << toString(kind);
        EXPECT_GE(r.utilization1d(a), 0.0);
        EXPECT_LE(r.utilization1d(a), 1.0 + 1e-9) << toString(kind);
    }
}

TEST(Evaluator, TransFusionRaises2dUtilizationOnCloud)
{
    const auto a = arch::cloudArch();
    Evaluator eval(a, model::llama3_8b(), 65536, fastOptions());
    const auto fuse = eval.evaluate(StrategyKind::FuseMax);
    const auto tf = eval.evaluate(StrategyKind::TransFusion);
    EXPECT_GT(tf.utilization2d(a), fuse.utilization2d(a));
}

TEST(Evaluator, SequenceScalingIsSuperlinearForAttention)
{
    // MHA cost grows ~quadratically with P; FFN linearly.
    EvaluatorOptions opts = fastOptions();
    Evaluator small(arch::cloudArch(), model::bertBase(), 4096,
                    opts);
    Evaluator large(arch::cloudArch(), model::bertBase(), 16384,
                    opts);
    const auto s = small.evaluate(StrategyKind::TransFusion);
    const auto l = large.evaluate(StrategyKind::TransFusion);
    const double mha_growth =
        l.layer(model::LayerKind::Mha).compute_s
        / s.layer(model::LayerKind::Mha).compute_s;
    const double ffn_growth =
        l.layer(model::LayerKind::Ffn).compute_s
        / s.layer(model::LayerKind::Ffn).compute_s;
    EXPECT_GT(mha_growth, 12.0); // ~16x
    EXPECT_LT(ffn_growth, 6.0);  // ~4x
}

TEST(Evaluator, AblationDisablingTileSeekUsesNaiveTile)
{
    EvaluatorOptions opts = fastOptions();
    opts.use_tileseek = false;
    Evaluator eval(arch::cloudArch(), model::bertBase(), 4096,
                   opts);
    const auto tf = eval.evaluate(StrategyKind::TransFusion);
    EXPECT_EQ(tf.tile.b, 1); // naive tile pins the batch tile to 1
}

TEST(Evaluator, AblationSerializingDramNeverFaster)
{
    EvaluatorOptions overlap = fastOptions();
    EvaluatorOptions serial = fastOptions();
    serial.overlap_dram = false;
    Evaluator e1(arch::edgeArch(), model::bertBase(), 4096,
                 overlap);
    Evaluator e2(arch::edgeArch(), model::bertBase(), 4096,
                 serial);
    for (auto kind : allStrategies()) {
        EXPECT_LE(e1.evaluate(kind).total.latency_s,
                  e2.evaluate(kind).total.latency_s + 1e-12)
            << toString(kind);
    }
}

TEST(Evaluator, RejectsBadSequence)
{
    EXPECT_THROW(
        Evaluator(arch::cloudArch(), model::bertBase(), 0),
        FatalError);
}

TEST(LayerMetrics, AccumulateOperator)
{
    LayerMetrics a, b;
    a.latency_s = 1;
    a.ops_2d = 2;
    a.energy.pe_j = 3;
    b.latency_s = 4;
    b.ops_2d = 5;
    b.energy.pe_j = 6;
    a += b;
    EXPECT_DOUBLE_EQ(a.latency_s, 5.0);
    EXPECT_DOUBLE_EQ(a.ops_2d, 7.0);
    EXPECT_DOUBLE_EQ(a.energy.pe_j, 9.0);
}

TEST(EvalResult, LayerIndexMapping)
{
    EXPECT_EQ(layerIndex(model::LayerKind::Qkv), 0u);
    EXPECT_EQ(layerIndex(model::LayerKind::Mha), 1u);
    EXPECT_EQ(layerIndex(model::LayerKind::LayerNorm), 2u);
    EXPECT_EQ(layerIndex(model::LayerKind::Ffn), 3u);
}

} // namespace
} // namespace transfusion::schedule
