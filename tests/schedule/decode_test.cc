/**
 * @file
 * Unit tests for the generation (prefill + decode) evaluator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "schedule/decode.hh"

namespace transfusion::schedule
{
namespace
{

EvaluatorOptions
fastOptions()
{
    EvaluatorOptions o;
    o.mcts.iterations = 128;
    return o;
}

TEST(Decode, TotalsAreSectionSums)
{
    DecodeEvaluator eval(arch::cloudArch(), model::t5Small(),
                         { 1024, 256 }, fastOptions());
    const auto r = eval.evaluate(StrategyKind::TransFusion);
    EXPECT_GT(r.prefill.latency_s, 0.0);
    EXPECT_GT(r.decode.latency_s, 0.0);
    EXPECT_NEAR(r.total.latency_s,
                r.prefill.latency_s + r.decode.latency_s,
                1e-9 * r.total.latency_s);
    EXPECT_GT(r.tokens_per_second, 0.0);
    EXPECT_NEAR(r.seconds_per_step * 256.0, r.decode.latency_s,
                1e-9 * r.decode.latency_s);
}

TEST(Decode, ZeroTokensMeansPrefillOnly)
{
    DecodeEvaluator eval(arch::cloudArch(), model::t5Small(),
                         { 1024, 0 }, fastOptions());
    const auto r = eval.evaluate(StrategyKind::FuseMax);
    EXPECT_DOUBLE_EQ(r.decode.latency_s, 0.0);
    EXPECT_DOUBLE_EQ(r.tokens_per_second, 0.0);
    EXPECT_NEAR(r.total.latency_s, r.prefill.latency_s,
                1e-12 * r.prefill.latency_s);
}

TEST(Decode, MoreTokensCostMore)
{
    const auto opts = fastOptions();
    DecodeEvaluator few(arch::cloudArch(), model::t5Small(),
                        { 1024, 128 }, opts);
    DecodeEvaluator many(arch::cloudArch(), model::t5Small(),
                         { 1024, 1024 }, opts);
    const auto a = few.evaluate(StrategyKind::FuseMax);
    const auto b = many.evaluate(StrategyKind::FuseMax);
    EXPECT_GT(b.decode.latency_s, a.decode.latency_s * 6.0);
    // Per-step cost grows with the cache, so 8x tokens cost more
    // than 8x the time.
    EXPECT_GT(b.decode.latency_s / a.decode.latency_s, 8.0 * 0.9);
}

TEST(Decode, StepsAreMemoryBoundAtLowIntensity)
{
    // Single-query steps stream the full weight set per token, so
    // decode is DRAM-limited whenever the arithmetic intensity
    // (~batch MACs per weight word) sits under the machine's
    // balance point: always on the cloud at batch 64, and on the
    // edge at small batch.
    {
        DecodeEvaluator eval(arch::cloudArch(), model::bertBase(),
                             { 2048, 64 }, fastOptions());
        const auto r = eval.evaluate(StrategyKind::TransFusion);
        EXPECT_GT(r.decode.dram_s, r.decode.compute_s);
    }
    {
        model::TransformerConfig small_batch = model::bertBase();
        small_batch.batch = 1;
        DecodeEvaluator eval(arch::edgeArch(), small_batch,
                             { 2048, 64 }, fastOptions());
        const auto r = eval.evaluate(StrategyKind::TransFusion);
        EXPECT_GT(r.decode.dram_s, r.decode.compute_s);
    }
    {
        // Decode is always more bandwidth-bound than prefill: the
        // per-batch KV cache gives DRAM traffic no reuse at all.
        DecodeEvaluator eval(arch::edgeArch(), model::bertBase(),
                             { 2048, 64 }, fastOptions());
        const auto r = eval.evaluate(StrategyKind::TransFusion);
        EXPECT_GT(r.decode.dram_s / r.decode.compute_s,
                  r.prefill.dram_s / r.prefill.compute_s);
    }
}

TEST(Decode, FusionGainsShrinkInDecode)
{
    // The headline insight: fusion's activation savings matter for
    // prefill, but decode is weight-streaming bound, so the
    // TransFusion/Unfused gap is smaller there.
    DecodeEvaluator eval(arch::cloudArch(), model::bertBase(),
                         { 4096, 512 }, fastOptions());
    const auto base = eval.evaluate(StrategyKind::Unfused);
    const auto tf = eval.evaluate(StrategyKind::TransFusion);
    const double prefill_gain =
        base.prefill.latency_s / tf.prefill.latency_s;
    const double decode_gain =
        base.decode.latency_s / tf.decode.latency_s;
    EXPECT_GT(prefill_gain, decode_gain);
    EXPECT_GE(decode_gain, 0.99); // never a slowdown
}

TEST(Decode, SamplingDensityBarelyMatters)
{
    // The per-step cost is ~affine in cache length, so 3 vs 9
    // samples must agree closely.
    DecodeEvaluator coarse(arch::edgeArch(), model::t5Small(),
                           { 2048, 2048 }, fastOptions(), 3);
    DecodeEvaluator fine(arch::edgeArch(), model::t5Small(),
                         { 2048, 2048 }, fastOptions(), 9);
    const auto a = coarse.evaluate(StrategyKind::FuseMax);
    const auto b = fine.evaluate(StrategyKind::FuseMax);
    EXPECT_NEAR(a.decode.latency_s, b.decode.latency_s,
                0.05 * b.decode.latency_s);
}

TEST(Decode, TrapezoidMatchesExactPerStepSum)
{
    // The integration samples a handful of cache lengths and
    // trapezoids between them, justified by the step cost being
    // affine in the cache length.  Validate against ground truth:
    // for small T, sum stepMetrics over every cache length the
    // decode phase actually visits (prompt+1 .. prompt+T) and
    // compare.  This is the invariant the serve simulator's
    // calibrated tables also lean on; if the affine assumption
    // breaks, this catches it.
    const auto opts = fastOptions();
    const std::int64_t prompt = 512, tokens = 8;
    for (auto strategy :
         { StrategyKind::Unfused, StrategyKind::TransFusion }) {
        DecodeEvaluator eval(arch::cloudArch(), model::t5Small(),
                             { prompt, tokens }, opts);
        LayerMetrics exact;
        for (std::int64_t i = 1; i <= tokens; ++i)
            exact += eval.stepMetrics(prompt + i, strategy);
        const auto r = eval.evaluate(strategy);
        EXPECT_NEAR(r.decode.latency_s, exact.latency_s,
                    0.02 * exact.latency_s);
        EXPECT_NEAR(r.decode.dram_bytes, exact.dram_bytes,
                    0.02 * exact.dram_bytes);
        EXPECT_NEAR(r.decode.energy.total(), exact.energy.total(),
                    0.02 * exact.energy.total());
    }
}

TEST(Decode, PublicStepMetricsIsAffineInCacheLength)
{
    // Spot-check the affinity assumption itself at decode scale:
    // three collinear cache lengths must give collinear latencies
    // (within roofline-crossover tolerance).
    DecodeEvaluator eval(arch::cloudArch(), model::t5Small(),
                         { 1024, 16 }, fastOptions());
    const auto a =
        eval.stepMetrics(2048, StrategyKind::FuseMax).latency_s;
    const auto b =
        eval.stepMetrics(3072, StrategyKind::FuseMax).latency_s;
    const auto c =
        eval.stepMetrics(4096, StrategyKind::FuseMax).latency_s;
    EXPECT_NEAR(b, 0.5 * (a + c), 0.01 * b);
    EXPECT_THROW(eval.stepMetrics(0, StrategyKind::FuseMax),
                 FatalError);
}

TEST(Decode, RejectsBadWorkloads)
{
    EXPECT_THROW(DecodeEvaluator(arch::cloudArch(),
                                 model::t5Small(), { 0, 10 }),
                 FatalError);
    EXPECT_THROW(DecodeEvaluator(arch::cloudArch(),
                                 model::t5Small(), { 128, -1 }),
                 FatalError);
    EXPECT_THROW(DecodeEvaluator(arch::cloudArch(),
                                 model::t5Small(), { 128, 10 },
                                 {}, 1),
                 FatalError);
}

} // namespace
} // namespace transfusion::schedule
