/**
 * @file
 * Unit tests for workload geometry (causal/cross attention) and the
 * encoder-decoder stack evaluator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "schedule/stack_evaluator.hh"
#include "schedule/tiling.hh"

namespace transfusion::schedule
{
namespace
{

EvaluatorOptions
fastOptions()
{
    EvaluatorOptions o;
    o.mcts.iterations = 128;
    return o;
}

TEST(Workload, Factories)
{
    const auto s = Workload::selfAttention(1024);
    EXPECT_EQ(s.query_len, 1024);
    EXPECT_EQ(s.context_len, 1024);
    EXPECT_FALSE(s.causal);

    const auto c = Workload::causalSelfAttention(512);
    EXPECT_TRUE(c.causal);

    const auto x = Workload::crossAttention(256, 4096);
    EXPECT_EQ(x.query_len, 256);
    EXPECT_EQ(x.context_len, 4096);
    EXPECT_FALSE(x.causal);
}

TEST(Workload, CausalHalvesMhaCost)
{
    const auto arch = arch::cloudArch();
    const auto cfg = model::bertBase();
    Evaluator plain(arch, cfg, Workload::selfAttention(8192),
                    fastOptions());
    Evaluator causal(arch, cfg,
                     Workload::causalSelfAttention(8192),
                     fastOptions());
    const auto p = plain.evaluate(StrategyKind::FuseMax);
    const auto c = causal.evaluate(StrategyKind::FuseMax);
    EXPECT_NEAR(c.layer(model::LayerKind::Mha).compute_s,
                0.5 * p.layer(model::LayerKind::Mha).compute_s,
                1e-9 * p.layer(model::LayerKind::Mha).compute_s);
    // Non-attention sub-layers are untouched.
    EXPECT_DOUBLE_EQ(c.layer(model::LayerKind::Ffn).compute_s,
                     p.layer(model::LayerKind::Ffn).compute_s);
}

TEST(Workload, CrossAttentionScalesWithContext)
{
    // MHA work is ~linear in the attended context length.
    const auto arch = arch::cloudArch();
    const auto cfg = model::bertBase();
    Evaluator narrow(arch, cfg,
                     Workload::crossAttention(1024, 4096),
                     fastOptions());
    Evaluator wide(arch, cfg,
                   Workload::crossAttention(1024, 16384),
                   fastOptions());
    const auto n = narrow.evaluate(StrategyKind::FuseMax);
    const auto w = wide.evaluate(StrategyKind::FuseMax);
    const double growth =
        w.layer(model::LayerKind::Mha).compute_s
        / n.layer(model::LayerKind::Mha).compute_s;
    EXPECT_GT(growth, 3.0);
    EXPECT_LT(growth, 5.0);
    // FFN depends only on the query length.
    EXPECT_DOUBLE_EQ(w.layer(model::LayerKind::Ffn).compute_s,
                     n.layer(model::LayerKind::Ffn).compute_s);
}

TEST(Workload, RejectsNonPositiveLengths)
{
    EXPECT_THROW(Evaluator(arch::cloudArch(), model::bertBase(),
                           Workload{ 0, 128, false }),
                 FatalError);
    EXPECT_THROW(Evaluator(arch::cloudArch(), model::bertBase(),
                           Workload{ 128, 0, false }),
                 FatalError);
}

TEST(StackConfig, FactoriesAndValidation)
{
    const auto enc = model::encoderOnly(model::bertBase());
    EXPECT_EQ(enc.encoder_layers, 12);
    EXPECT_EQ(enc.decoder_layers, 0);
    EXPECT_NO_THROW(enc.validate());

    const auto dec = model::decoderOnly(model::llama3_8b());
    EXPECT_EQ(dec.decoder_layers, 32);
    EXPECT_FALSE(dec.decoder_cross_attention);

    const auto seq2seq =
        model::encoderDecoder(model::t5Small(), 6, 6);
    EXPECT_TRUE(seq2seq.decoder_cross_attention);

    model::StackConfig bad;
    bad.name = "bad";
    bad.block = model::t5Small();
    bad.decoder_layers = 2;
    bad.decoder_cross_attention = true; // no encoder to attend
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(StackConfig, AttentionKindNames)
{
    EXPECT_EQ(toString(model::AttentionKind::BidirectionalSelf),
              "self");
    EXPECT_EQ(toString(model::AttentionKind::CausalSelf),
              "causal-self");
    EXPECT_EQ(toString(model::AttentionKind::Cross), "cross");
}

TEST(StackEvaluator, EncoderOnlyMatchesPlainEvaluator)
{
    // An encoder-only stack must reproduce the per-layer Evaluator
    // exactly (same math path).
    const auto arch = arch::edgeArch();
    const auto cfg = model::t5Small();
    StackEvaluator stack(arch, model::encoderOnly(cfg), 2048, 0,
                         fastOptions());
    Evaluator plain(arch, cfg, 2048, fastOptions());

    const auto s = stack.evaluate(StrategyKind::FuseMax);
    const auto p = plain.evaluate(StrategyKind::FuseMax);
    EXPECT_NEAR(s.total.latency_s, p.total.latency_s,
                1e-9 * p.total.latency_s);
    EXPECT_NEAR(s.total.energy.total(), p.total.energy.total(),
                1e-9 * p.total.energy.total());
    EXPECT_DOUBLE_EQ(s.decoder_self.latency_s, 0.0);
    EXPECT_DOUBLE_EQ(s.decoder_cross.latency_s, 0.0);
}

TEST(StackEvaluator, TotalsAreSectionSums)
{
    const auto stack = model::encoderDecoder(model::t5Small(), 6,
                                             6);
    StackEvaluator eval(arch::cloudArch(), stack, 4096, 1024,
                        fastOptions());
    const auto r = eval.evaluate(StrategyKind::TransFusion);
    EXPECT_GT(r.encoder.latency_s, 0.0);
    EXPECT_GT(r.decoder_self.latency_s, 0.0);
    EXPECT_GT(r.decoder_cross.latency_s, 0.0);
    EXPECT_NEAR(r.total.latency_s,
                r.encoder.latency_s + r.decoder_self.latency_s
                    + r.decoder_cross.latency_s,
                1e-9 * r.total.latency_s);
}

TEST(StackEvaluator, CrossBlocksHaveNoFfn)
{
    // A cross block (QKV+MHA+LN) must cost less than a full block
    // at the same geometry.
    const auto arch = arch::cloudArch();
    const auto cfg = model::t5Small();
    const auto stack = model::encoderDecoder(cfg, 6, 6);
    StackEvaluator eval(arch, stack, 2048, 2048, fastOptions());
    const auto r = eval.evaluate(StrategyKind::FuseMax);
    // Self blocks are causal (half MHA) but include the FFN; with
    // src == tgt the cross block lacking FFN plus double MHA must
    // still differ from self blocks.
    EXPECT_NE(r.decoder_cross.latency_s, r.decoder_self.latency_s);
}

TEST(StackEvaluator, TransFusionWinsOnSeq2Seq)
{
    const auto stack = model::encoderDecoder(model::t5Small(), 6,
                                             6);
    StackEvaluator eval(arch::edgeArch(), stack, 8192, 2048,
                        fastOptions());
    const auto base = eval.evaluate(StrategyKind::Unfused);
    const auto tf = eval.evaluate(StrategyKind::TransFusion);
    EXPECT_LT(tf.total.latency_s, base.total.latency_s);
    EXPECT_LT(tf.total.energy.total(), base.total.energy.total());
}

TEST(StackEvaluator, DecoderOnlyIsCheaperThanBidirectional)
{
    // Causal masking should make a decoder-only stack cheaper than
    // the encoder-only stack of the same shape and length.
    const auto cfg = model::bertBase();
    const auto opts = fastOptions();
    StackEvaluator enc(arch::cloudArch(), model::encoderOnly(cfg),
                       8192, 0, opts);
    StackEvaluator dec(arch::cloudArch(), model::decoderOnly(cfg),
                       0, 8192, opts);
    const auto e = enc.evaluate(StrategyKind::TransFusion);
    const auto d = dec.evaluate(StrategyKind::TransFusion);
    EXPECT_LT(d.total.latency_s, e.total.latency_s);
}

TEST(StackEvaluator, RejectsMissingLengths)
{
    EXPECT_THROW(
        StackEvaluator(arch::cloudArch(),
                       model::encoderOnly(model::t5Small()), 0, 0),
        FatalError);
    EXPECT_THROW(
        StackEvaluator(arch::cloudArch(),
                       model::decoderOnly(model::t5Small()), 128,
                       0),
        FatalError);
}

TEST(TileObjective, EnergyModeFindsFeasibleTile)
{
    const auto arch = arch::edgeArch();
    const auto cfg = model::bertBase();
    tileseek::MctsOptions opts;
    opts.iterations = 512;
    const auto tile = seekTile(arch, cfg, 16384, 1.0, opts, 0,
                               TileObjective::Energy);
    EXPECT_TRUE(tileFeasible(tile, arch, 16384));
}

} // namespace
} // namespace transfusion::schedule
