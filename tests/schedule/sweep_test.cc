/**
 * @file
 * Tests for the parallel sweep driver: point-for-point agreement
 * with the serial evaluator, determinism across thread counts and
 * repeated runs, and grid construction order.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "schedule/sweep.hh"

namespace transfusion::schedule
{
namespace
{

SweepOptions
fastOptions(int threads)
{
    SweepOptions opts;
    opts.threads = threads;
    opts.evaluator.mcts.iterations = 64; // keep the grid cheap
    return opts;
}

std::vector<SweepPoint>
smallGrid()
{
    return Sweep::grid(
        { arch::edgeArch() },
        { model::bertBase(), model::t5Small() },
        { 1 << 10, 4 << 10 });
}

/** Bitwise comparison of the metrics both paths must agree on. */
void
expectSameResult(const EvalResult &a, const EvalResult &b)
{
    EXPECT_EQ(a.total.latency_s, b.total.latency_s);
    EXPECT_EQ(a.total.dram_bytes, b.total.dram_bytes);
    EXPECT_EQ(a.total.energy.total(), b.total.energy.total());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        EXPECT_EQ(a.layers[i].latency_s, b.layers[i].latency_s);
        EXPECT_EQ(a.layers[i].dram_bytes, b.layers[i].dram_bytes);
    }
}

TEST(Sweep, GridIsArchModelSeqMajorOrder)
{
    const auto points = Sweep::grid(
        { arch::cloudArch(), arch::edgeArch() },
        { model::bertBase() }, { 1024, 2048 });
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].label(), "cloud/BERT/1024");
    EXPECT_EQ(points[1].label(), "cloud/BERT/2048");
    EXPECT_EQ(points[2].label(), "edge/BERT/1024");
    EXPECT_EQ(points[3].label(), "edge/BERT/2048");
}

TEST(Sweep, MatchesSerialEvaluatorPointForPoint)
{
    const auto points = smallGrid();
    const auto opts = fastOptions(4);
    const auto swept = Sweep(opts).run(points);
    ASSERT_EQ(swept.size(), points.size());

    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        EXPECT_EQ(swept[i].point.label(), p.label());
        const Evaluator serial(p.arch, p.cfg, p.seq,
                               opts.evaluator);
        for (const auto kind : allStrategies()) {
            expectSameResult(swept[i].at(kind),
                             serial.evaluate(kind));
        }
    }
}

TEST(Sweep, DeterministicAcrossThreadCounts)
{
    const auto points = smallGrid();
    const auto serial = Sweep(fastOptions(1)).run(points);
    for (const int threads : { 2, 8 }) {
        const auto parallel =
            Sweep(fastOptions(threads)).run(points);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            for (const auto kind : allStrategies()) {
                expectSameResult(parallel[i].at(kind),
                                 serial[i].at(kind));
            }
        }
    }
}

TEST(Sweep, EmptyGridAndMissingStrategy)
{
    const Sweep sweep(fastOptions(2));
    EXPECT_TRUE(sweep.run({}).empty());

    SweepOptions only_tf = fastOptions(1);
    only_tf.strategies = { StrategyKind::TransFusion };
    const auto metrics = Sweep(only_tf).run(
        Sweep::grid({ arch::edgeArch() }, { model::bertBase() },
                    { 1024 }));
    ASSERT_EQ(metrics.size(), 1u);
    EXPECT_NO_THROW(metrics[0].at(StrategyKind::TransFusion));
    EXPECT_THROW(metrics[0].at(StrategyKind::Unfused), FatalError);
}

TEST(Sweep, ThreadCountResolution)
{
    EXPECT_EQ(Sweep(fastOptions(5)).threads(), 5);
    EXPECT_GE(Sweep(fastOptions(0)).threads(), 1);
}

} // namespace
} // namespace transfusion::schedule
