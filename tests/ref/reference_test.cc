/**
 * @file
 * Unit tests for the unfused reference Transformer: LayerNorm
 * statistics, FFN activations, projection shapes, and the full
 * layer plumbing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "ref/reference.hh"

namespace transfusion::ref
{
namespace
{

TEST(ProjectQkv, MatchesHandComputation)
{
    // d=2, p=1, h=1, e=2.
    Tensor input({ 2, 1 });
    input.at({ 0, 0 }) = 2.0;
    input.at({ 1, 0 }) = 3.0;
    Tensor w({ 2, 1, 2 });
    w.at({ 0, 0, 0 }) = 1.0;
    w.at({ 0, 0, 1 }) = -1.0;
    w.at({ 1, 0, 0 }) = 0.5;
    w.at({ 1, 0, 1 }) = 2.0;
    const Tensor q = projectQkv(input, w);
    EXPECT_DOUBLE_EQ(q.at({ 0, 0, 0 }), 2.0 * 1.0 + 3.0 * 0.5);
    EXPECT_DOUBLE_EQ(q.at({ 0, 1, 0 }), 2.0 * -1.0 + 3.0 * 2.0);
}

TEST(AddLayerNorm, OutputHasZeroMeanUnitVariance)
{
    Rng rng(21);
    const std::int64_t h = 2, f = 4, p = 3;
    const Tensor inp = Tensor::random({ h, f, p }, rng);
    const Tensor av = Tensor::random({ h, f, p }, rng);
    const Tensor nr = addLayerNorm(inp, av);

    const double n = static_cast<double>(h * f);
    for (std::int64_t pi = 0; pi < p; ++pi) {
        double mean = 0, var = 0;
        for (std::int64_t hi = 0; hi < h; ++hi) {
            for (std::int64_t fi = 0; fi < f; ++fi)
                mean += nr.at({ hi, fi, pi });
        }
        mean /= n;
        for (std::int64_t hi = 0; hi < h; ++hi) {
            for (std::int64_t fi = 0; fi < f; ++fi) {
                const double d = nr.at({ hi, fi, pi }) - mean;
                var += d * d;
            }
        }
        var /= n;
        EXPECT_NEAR(mean, 0.0, 1e-10);
        EXPECT_NEAR(var, 1.0, 1e-10);
    }
}

TEST(AddLayerNorm, ResidualActuallyAdded)
{
    // With av = -inp the sum is all zeros -- degenerate variance.
    // Use av = inp instead: normalizing 2*inp equals normalizing
    // inp (scale invariance of LayerNorm).
    Rng rng(3);
    const Tensor inp = Tensor::random({ 2, 3, 2 }, rng);
    Tensor zero({ 2, 3, 2 });
    const Tensor a = addLayerNorm(inp, inp);
    const Tensor b = addLayerNorm(inp, zero);
    EXPECT_LT(Tensor::maxAbsDiff(a, b), 1e-10);
}

TEST(FeedForward, ReluGatesNegativePreactivations)
{
    // h=1, f=1, p=1, s=2; one hidden unit pushed negative.
    Tensor nr({ 1, 1, 1 });
    nr.at({ 0, 0, 0 }) = 1.0;
    Tensor wf1({ 1, 1, 2 });
    wf1.at({ 0, 0, 0 }) = -5.0; // hidden 0 pre-act = -5 -> relu 0
    wf1.at({ 0, 0, 1 }) = 2.0;  // hidden 1 pre-act = 2
    Tensor bf1({ 2 });
    Tensor wf2({ 1, 1, 2 });
    wf2.at({ 0, 0, 0 }) = 100.0; // would dominate if not gated
    wf2.at({ 0, 0, 1 }) = 3.0;
    Tensor bf2({ 1, 1 });
    bf2.at({ 0, 0 }) = 0.5;

    const Tensor out = feedForward(nr, wf1, bf1, wf2, bf2,
                                   einsum::UnaryOp::Relu);
    EXPECT_DOUBLE_EQ(out.at({ 0, 0, 0 }), 2.0 * 3.0 + 0.5);
}

TEST(FeedForward, BiasesApplied)
{
    Tensor nr({ 1, 1, 1 }); // zero input
    Tensor wf1({ 1, 1, 1 }, 1.0);
    Tensor bf1({ 1 });
    bf1.at({ 0 }) = 2.0;
    Tensor wf2({ 1, 1, 1 }, 1.0);
    Tensor bf2({ 1, 1 });
    bf2.at({ 0, 0 }) = -1.0;
    const Tensor out = feedForward(nr, wf1, bf1, wf2, bf2,
                                   einsum::UnaryOp::Relu);
    // relu(0 + 2) * 1 + (-1) = 1.
    EXPECT_DOUBLE_EQ(out.at({ 0, 0, 0 }), 1.0);
}

TEST(NaiveAttention, UniformScoresAverageV)
{
    // With Q = 0 every score ties, so attention averages V rows.
    const std::int64_t h = 1, e = 2, f = 2, p = 1, m = 4;
    Tensor q({ h, e, p });
    Rng rng(17);
    const Tensor k = Tensor::random({ h, e, m }, rng);
    Tensor v({ h, f, m });
    for (std::int64_t mi = 0; mi < m; ++mi) {
        v.at({ 0, 0, mi }) = static_cast<double>(mi);
        v.at({ 0, 1, mi }) = 1.0;
    }
    const Tensor out = naiveAttention(q, k, v);
    EXPECT_NEAR(out.at({ 0, 0, 0 }), (0 + 1 + 2 + 3) / 4.0, 1e-12);
    EXPECT_NEAR(out.at({ 0, 1, 0 }), 1.0, 1e-12);
}

TEST(NaiveAttention, OneHotScoresSelectV)
{
    // A huge aligned key makes softmax a near-one-hot selector.
    const std::int64_t h = 1, e = 2, f = 1, p = 1, m = 3;
    Tensor q({ h, e, p });
    q.at({ 0, 0, 0 }) = 50.0;
    Tensor k({ h, e, m });
    k.at({ 0, 0, 1 }) = 1.0; // key 1 aligns with q
    Tensor v({ h, f, m });
    v.at({ 0, 0, 0 }) = 7.0;
    v.at({ 0, 0, 1 }) = -3.0;
    v.at({ 0, 0, 2 }) = 9.0;
    const Tensor out = naiveAttention(q, k, v);
    EXPECT_NEAR(out.at({ 0, 0, 0 }), -3.0, 1e-9);
}

TEST(TransformerLayer, RunsAndIsFinite)
{
    Rng rng(31);
    const std::int64_t h = 2, e = 4, d = h * e, p = 3, s = 8;
    const Tensor input = Tensor::random({ d, p }, rng);
    const Tensor wq = Tensor::random({ d, h, e }, rng, -0.5, 0.5);
    const Tensor wk = Tensor::random({ d, h, e }, rng, -0.5, 0.5);
    const Tensor wv = Tensor::random({ d, h, e }, rng, -0.5, 0.5);
    const Tensor wf1 = Tensor::random({ h, e, s }, rng, -0.5, 0.5);
    const Tensor bf1 = Tensor::random({ s }, rng);
    const Tensor wf2 = Tensor::random({ h, e, s }, rng, -0.5, 0.5);
    Tensor bf2_t = Tensor::random({ h, e }, rng);

    const Tensor out = transformerLayer(input, wq, wk, wv, wf1, bf1,
                                        wf2, bf2_t,
                                        einsum::UnaryOp::Gelu);
    EXPECT_EQ(out.shape(), (std::vector<std::int64_t>{ h, e, p }));
    for (std::int64_t i = 0; i < out.size(); ++i)
        EXPECT_TRUE(std::isfinite(out.flat(i)));
}

TEST(TransformerLayer, RejectsMismatchedModelDim)
{
    Rng rng(1);
    const Tensor input = Tensor::random({ 9, 2 }, rng); // 9 != h*e
    const Tensor w = Tensor::random({ 9, 2, 4 }, rng);
    const Tensor wf = Tensor::random({ 2, 4, 4 }, rng);
    const Tensor bf1 = Tensor::random({ 4 }, rng);
    Tensor bf2({ 2, 4 });
    EXPECT_THROW(transformerLayer(input, w, w, w, wf, bf1, wf, bf2,
                                  einsum::UnaryOp::Relu),
                 PanicError);
}

} // namespace
} // namespace transfusion::ref
