/**
 * @file
 * Tests for the generic recurrent-cascade interpreter.  The
 * centerpiece: executing the *actual* Einsum Cascade 1 object that
 * DPipe schedules -- the twelve ops of Fig. 2, recurrences and all
 * -- reproduces naive softmax attention and the hand-written
 * streaming implementation exactly.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "model/cascades.hh"
#include "ref/recurrent_interpreter.hh"
#include "ref/reference.hh"
#include "ref/streaming_attention.hh"

namespace transfusion::ref
{
namespace
{

using einsum::Cascade;
using einsum::CombineOp;
using einsum::DimEnv;
using einsum::Einsum;

TEST(RecurrentInterpreter, RunningSumOverALoop)
{
    // S[m1+1] = S[m1] + X[m1]: after the loop, T = 1/S equals the
    // reciprocal of the column sums.
    Cascade c("runsum");
    c.add(Einsum("S", { "m1", "p" })
              .inputPrevious("S", { "m1", "p" })
              .input("X", { "m1", "p" })
              .combine(CombineOp::Add)
              .recurrentOver("m1"));
    c.add(Einsum("T", { "p" })
              .input("S", { "p" })
              .unary(einsum::UnaryOp::Recip));

    DimEnv dims{ { "m1", 4 }, { "p", 3 } };
    Rng rng(5);
    Tensor x = Tensor::random({ 4, 3 }, rng, 0.5, 1.5);
    Bindings in;
    in["X"] = x;
    const Bindings out =
        evaluateRecurrentCascade(c, dims, in, "m1");

    for (std::int64_t p = 0; p < 3; ++p) {
        double sum = 0;
        for (std::int64_t m = 0; m < 4; ++m)
            sum += x.at({ m, p });
        EXPECT_NEAR(out.at("T").at({ p }), 1.0 / sum, 1e-12);
    }
}

TEST(RecurrentInterpreter, RunningMaxInitializesAtMinusInfinity)
{
    Cascade c("runmax");
    c.add(Einsum("M", { "m1" })
              .inputPrevious("M", { "m1" })
              .input("X", { "m1" })
              .combine(CombineOp::Max)
              .recurrentOver("m1"));
    c.add(Einsum("F", {"o"}).input("M", {"o"}));

    // All-negative inputs: a zero-initialized state would corrupt
    // the max; the identity is -inf.
    DimEnv dims{ { "m1", 3 }, { "o", 1 } };
    Tensor x({ 3 });
    x.at({ 0 }) = -5;
    x.at({ 1 }) = -2;
    x.at({ 2 }) = -9;
    Bindings in;
    in["X"] = x;
    // F reads the final slice of M: its signature must drop m1, so
    // use a unit placeholder axis "o".
    const Bindings out =
        evaluateRecurrentCascade(c, dims, in, "m1");
    EXPECT_DOUBLE_EQ(out.at("F").at({ 0 }), -2.0);
}

TEST(RecurrentInterpreter, Cascade1MatchesNaiveAttention)
{
    // THE test: the exact 12-op MHA cascade, executed generically.
    const std::int64_t h = 2, e = 8, f = 8, p = 5, m0 = 4, m1 = 3;
    model::TransformerConfig cfg;
    cfg.name = "t";
    cfg.layers = 1;
    cfg.heads = h;
    cfg.head_dim = e;
    cfg.d_model = h * e;
    cfg.ffn_hidden = 4;
    cfg.batch = 1;
    const DimEnv dims = model::makeDims(cfg, p, m0, m1);

    Rng rng(777);
    const Tensor q = Tensor::random({ h, e, p }, rng, -2, 2);
    const Tensor bk = Tensor::random({ h, e, m1, m0 }, rng, -2, 2);
    const Tensor bv = Tensor::random({ h, f, m1, m0 }, rng, -2, 2);

    Bindings in;
    in["Q"] = q;
    in["BK"] = bk;
    in["BV"] = bv;
    const Bindings out = evaluateRecurrentCascade(
        model::buildMhaCascade(), dims, in, "m1");

    // Reference: flatten the blocked context.
    Tensor k_flat({ h, e, m1 * m0 }), v_flat({ h, f, m1 * m0 });
    for (std::int64_t hh = 0; hh < h; ++hh) {
        for (std::int64_t ee = 0; ee < e; ++ee) {
            for (std::int64_t i = 0; i < m1 * m0; ++i) {
                k_flat.at({ hh, ee, i }) =
                    bk.at({ hh, ee, i / m0, i % m0 });
                v_flat.at({ hh, ee, i }) =
                    bv.at({ hh, ee, i / m0, i % m0 });
            }
        }
    }
    const Tensor naive = naiveAttention(q, k_flat, v_flat);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("AV"), naive), 1e-10);

    // And against the hand-written streaming recurrence.
    const Tensor streamed =
        streamingAttention(q, k_flat, v_flat, m0);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("AV"), streamed), 1e-10);
}

TEST(RecurrentInterpreter, Cascade1TileInvariance)
{
    // Different (m1, m0) factorizations of the same context agree.
    const std::int64_t h = 1, e = 4, p = 3, m = 12;
    Rng rng(42);
    const Tensor q = Tensor::random({ h, e, p }, rng);
    const Tensor k = Tensor::random({ h, e, m }, rng);
    const Tensor v = Tensor::random({ h, e, m }, rng);
    model::TransformerConfig cfg;
    cfg.name = "t";
    cfg.layers = 1;
    cfg.heads = h;
    cfg.head_dim = e;
    cfg.d_model = h * e;
    cfg.ffn_hidden = 4;
    cfg.batch = 1;

    Tensor first;
    bool have_first = false;
    for (std::int64_t m0 : { 1, 2, 3, 4, 6, 12 }) {
        const std::int64_t m1 = m / m0;
        Tensor bk({ h, e, m1, m0 }), bv({ h, e, m1, m0 });
        for (std::int64_t ee = 0; ee < e; ++ee) {
            for (std::int64_t i = 0; i < m; ++i) {
                bk.at({ 0, ee, i / m0, i % m0 }) =
                    k.at({ 0, ee, i });
                bv.at({ 0, ee, i / m0, i % m0 }) =
                    v.at({ 0, ee, i });
            }
        }
        Bindings in;
        in["Q"] = q;
        in["BK"] = bk;
        in["BV"] = bv;
        const Bindings out = evaluateRecurrentCascade(
            model::buildMhaCascade(),
            model::makeDims(cfg, p, m0, m1), in, "m1");
        if (!have_first) {
            first = out.at("AV");
            have_first = true;
        } else {
            EXPECT_LT(Tensor::maxAbsDiff(first, out.at("AV")),
                      1e-10)
                << "m0=" << m0;
        }
    }
}

TEST(RecurrentInterpreter, PreviousReadOfNonStateIsFatal)
{
    Cascade c("bad");
    c.add(Einsum("Y", { "m1" })
              .inputPrevious("X", { "m1" })
              .unary(einsum::UnaryOp::Exp));
    DimEnv dims{ { "m1", 2 } };
    Bindings in;
    in["X"] = Tensor({ 2 });
    EXPECT_THROW(evaluateRecurrentCascade(c, dims, in, "m1"),
                 FatalError);
}

} // namespace
} // namespace transfusion::ref
