/**
 * @file
 * The central functional-correctness obligation: the 1-pass
 * streaming attention of Einsum Cascade 1 (Fig. 2) computes exactly
 * the same function as naive softmax attention, for every tile
 * split of the context.  Parameterized over shapes and tile sizes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "ref/reference.hh"
#include "ref/streaming_attention.hh"

namespace transfusion::ref
{
namespace
{

struct AttentionCase
{
    std::int64_t h, e, f, p, m, m0;
};

class AttentionEquivalence
    : public ::testing::TestWithParam<AttentionCase>
{};

TEST_P(AttentionEquivalence, StreamingMatchesNaive)
{
    const auto c = GetParam();
    Rng rng(0xC0FFEE ^ static_cast<std::uint64_t>(
        c.h * 1000003 + c.p * 101 + c.m * 13 + c.m0));
    const Tensor q = Tensor::random({ c.h, c.e, c.p }, rng, -2, 2);
    const Tensor k = Tensor::random({ c.h, c.e, c.m }, rng, -2, 2);
    const Tensor v = Tensor::random({ c.h, c.f, c.m }, rng, -2, 2);

    const Tensor expect = naiveAttention(q, k, v);
    const Tensor got = streamingAttention(q, k, v, c.m0);
    EXPECT_LT(Tensor::maxAbsDiff(expect, got), 1e-9)
        << "h=" << c.h << " e=" << c.e << " p=" << c.p
        << " m=" << c.m << " m0=" << c.m0;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, AttentionEquivalence,
    ::testing::Values(
        AttentionCase{ 1, 4, 4, 3, 8, 1 },   // finest tiling
        AttentionCase{ 1, 4, 4, 3, 8, 2 },
        AttentionCase{ 1, 4, 4, 3, 8, 4 },
        AttentionCase{ 1, 4, 4, 3, 8, 8 },   // single tile
        AttentionCase{ 2, 8, 8, 5, 12, 3 },  // non-power-of-two
        AttentionCase{ 4, 16, 16, 8, 32, 8 },
        AttentionCase{ 2, 4, 4, 1, 16, 4 },  // single query
        AttentionCase{ 1, 1, 1, 2, 6, 2 },   // degenerate dims
        AttentionCase{ 3, 8, 8, 7, 20, 5 },
        AttentionCase{ 2, 32, 32, 4, 64, 16 }));

TEST(AttentionEquivalence, TileSizeInvariance)
{
    // All tile splits of the same problem agree with each other.
    Rng rng(77);
    const std::int64_t h = 2, e = 8, f = 8, p = 4, m = 24;
    const Tensor q = Tensor::random({ h, e, p }, rng);
    const Tensor k = Tensor::random({ h, e, m }, rng);
    const Tensor v = Tensor::random({ h, f, m }, rng);

    const Tensor base = streamingAttention(q, k, v, m);
    for (std::int64_t m0 : { 1, 2, 3, 4, 6, 8, 12 }) {
        const Tensor t = streamingAttention(q, k, v, m0);
        EXPECT_LT(Tensor::maxAbsDiff(base, t), 1e-9)
            << "m0=" << m0;
    }
}

TEST(AttentionEquivalence, LargeScoresStayStable)
{
    // The running-max correction must keep large logits finite
    // (this is the whole point of the RM/PRM machinery).
    Rng rng(123);
    const std::int64_t h = 1, e = 4, p = 2, m = 8;
    const Tensor q = Tensor::random({ h, e, p }, rng, 20, 40);
    const Tensor k = Tensor::random({ h, e, m }, rng, 20, 40);
    const Tensor v = Tensor::random({ h, e, m }, rng, -1, 1);

    const Tensor out = streamingAttention(q, k, v, 2);
    for (std::int64_t i = 0; i < out.size(); ++i)
        EXPECT_TRUE(std::isfinite(out.flat(i)));
    const Tensor expect = naiveAttention(q, k, v);
    EXPECT_LT(Tensor::maxAbsDiff(expect, out), 1e-9);
}

TEST(AttentionEquivalence, RowsAreConvexCombinations)
{
    // Attention output lies in the convex hull of the V rows:
    // min_m V <= AV <= max_m V per (h, f).
    Rng rng(9);
    const std::int64_t h = 2, e = 4, f = 4, p = 6, m = 12;
    const Tensor q = Tensor::random({ h, e, p }, rng);
    const Tensor k = Tensor::random({ h, e, m }, rng);
    const Tensor v = Tensor::random({ h, f, m }, rng);
    const Tensor out = streamingAttention(q, k, v, 4);

    for (std::int64_t hi = 0; hi < h; ++hi) {
        for (std::int64_t fi = 0; fi < f; ++fi) {
            double lo = 1e300, hi_v = -1e300;
            for (std::int64_t mi = 0; mi < m; ++mi) {
                lo = std::min(lo, v.at({ hi, fi, mi }));
                hi_v = std::max(hi_v, v.at({ hi, fi, mi }));
            }
            for (std::int64_t pi = 0; pi < p; ++pi) {
                const double x = out.at({ hi, fi, pi });
                EXPECT_GE(x, lo - 1e-9);
                EXPECT_LE(x, hi_v + 1e-9);
            }
        }
    }
}

TEST(AttentionEquivalence, BadTileSizeIsFatal)
{
    Rng rng(1);
    const Tensor q = Tensor::random({ 1, 2, 2 }, rng);
    const Tensor k = Tensor::random({ 1, 2, 8 }, rng);
    const Tensor v = Tensor::random({ 1, 2, 8 }, rng);
    EXPECT_THROW(streamingAttention(q, k, v, 3), FatalError);
    EXPECT_THROW(streamingAttention(q, k, v, 0), FatalError);
}

} // namespace
} // namespace transfusion::ref
