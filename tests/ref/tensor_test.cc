/**
 * @file
 * Unit tests for the dense reference tensor.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "ref/tensor.hh"

namespace transfusion::ref
{
namespace
{

TEST(Tensor, ScalarDefault)
{
    Tensor t;
    EXPECT_EQ(t.rank(), 0);
    EXPECT_EQ(t.size(), 1);
    EXPECT_DOUBLE_EQ(t.at({}), 0.0);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor t({ 2, 3 });
    EXPECT_EQ(t.size(), 6);
    for (std::int64_t i = 0; i < t.size(); ++i)
        EXPECT_DOUBLE_EQ(t.flat(i), 0.0);
}

TEST(Tensor, FillConstructor)
{
    Tensor t({ 2, 2 }, 7.5);
    EXPECT_DOUBLE_EQ(t.at({ 1, 1 }), 7.5);
}

TEST(Tensor, RowMajorLayout)
{
    Tensor t({ 2, 3 });
    t.at({ 0, 0 }) = 1;
    t.at({ 0, 2 }) = 2;
    t.at({ 1, 0 }) = 3;
    EXPECT_DOUBLE_EQ(t.flat(0), 1.0);
    EXPECT_DOUBLE_EQ(t.flat(2), 2.0);
    EXPECT_DOUBLE_EQ(t.flat(3), 3.0);
    EXPECT_EQ(t.offsetOf({ 1, 2 }), 5);
}

TEST(Tensor, OutOfRangeIndexPanics)
{
    Tensor t({ 2, 2 });
    EXPECT_THROW(t.at({ 2, 0 }), PanicError);
    EXPECT_THROW(t.at({ 0 }), PanicError);
    EXPECT_THROW(t.flat(4), PanicError);
}

TEST(Tensor, NonPositiveDimPanics)
{
    EXPECT_THROW(Tensor({ 2, 0 }), PanicError);
}

TEST(Tensor, RandomIsDeterministicPerSeed)
{
    Rng r1(9), r2(9);
    const Tensor a = Tensor::random({ 3, 3 }, r1);
    const Tensor b = Tensor::random({ 3, 3 }, r2);
    EXPECT_DOUBLE_EQ(Tensor::maxAbsDiff(a, b), 0.0);
}

TEST(Tensor, RandomRespectsBounds)
{
    Rng r(5);
    const Tensor a = Tensor::random({ 100 }, r, 2.0, 3.0);
    for (std::int64_t i = 0; i < a.size(); ++i) {
        EXPECT_GE(a.flat(i), 2.0);
        EXPECT_LT(a.flat(i), 3.0);
    }
}

TEST(Tensor, MaxAbsDiff)
{
    Tensor a({ 2 }), b({ 2 });
    a.at({ 0 }) = 1.0;
    b.at({ 0 }) = 1.5;
    b.at({ 1 }) = -0.25;
    EXPECT_DOUBLE_EQ(Tensor::maxAbsDiff(a, b), 0.5);
}

TEST(Tensor, MaxAbsDiffShapeMismatchPanics)
{
    Tensor a({ 2 }), b({ 3 });
    EXPECT_THROW(Tensor::maxAbsDiff(a, b), PanicError);
}

TEST(Tensor, FillOverwrites)
{
    Tensor t({ 4 }, 1.0);
    t.fill(-2.0);
    for (std::int64_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(t.flat(i), -2.0);
}

} // namespace
} // namespace transfusion::ref
