/**
 * @file
 * Unit tests for the cascade interpreter: unary/combine semantics,
 * contraction, reductions, broadcasting, scaling, and cascade-level
 * topological execution.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "ref/interpreter.hh"

namespace transfusion::ref
{
namespace
{

using einsum::Cascade;
using einsum::CombineOp;
using einsum::DimEnv;
using einsum::Einsum;
using einsum::ReduceOp;
using einsum::UnaryOp;

TEST(ApplyUnary, KnownValues)
{
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::None, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::Exp, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::Square, -3.0), 9.0);
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::Rsqrt, 4.0), 0.5);
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::Recip, 4.0), 0.25);
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::Relu, -2.0), 0.0);
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::Relu, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::Sigmoid, 0.0), 0.5);
    EXPECT_DOUBLE_EQ(applyUnary(UnaryOp::Silu, 0.0), 0.0);
    EXPECT_NEAR(applyUnary(UnaryOp::Gelu, 3.0), 3.0, 0.02);
    EXPECT_NEAR(applyUnary(UnaryOp::Gelu, -3.0), 0.0, 0.02);
}

TEST(ApplyCombine, KnownValues)
{
    EXPECT_DOUBLE_EQ(applyCombine(CombineOp::Mul, 3, 4), 12.0);
    EXPECT_DOUBLE_EQ(applyCombine(CombineOp::Add, 3, 4), 7.0);
    EXPECT_DOUBLE_EQ(applyCombine(CombineOp::Sub, 3, 4), -1.0);
    EXPECT_DOUBLE_EQ(applyCombine(CombineOp::Div, 3, 4), 0.75);
    EXPECT_DOUBLE_EQ(applyCombine(CombineOp::Max, 3, 4), 4.0);
}

TEST(EvaluateEinsum, MatrixMultiply)
{
    DimEnv env{ { "m", 2 }, { "k", 3 }, { "n", 2 } };
    Bindings b;
    Tensor a({ 2, 3 });
    // [[1,2,3],[4,5,6]]
    for (std::int64_t i = 0; i < 6; ++i)
        a.flat(i) = static_cast<double>(i + 1);
    Tensor bb({ 3, 2 });
    // [[1,0],[0,1],[1,1]]
    bb.at({ 0, 0 }) = 1;
    bb.at({ 1, 1 }) = 1;
    bb.at({ 2, 0 }) = 1;
    bb.at({ 2, 1 }) = 1;
    b["A"] = a;
    b["B"] = bb;

    Einsum z("Z", { "m", "n" });
    z.input("A", { "m", "k" }).input("B", { "k", "n" })
        .combine(CombineOp::Mul).reduce(ReduceOp::Sum);
    const Tensor out = evaluateEinsum(z, env, b);
    EXPECT_DOUBLE_EQ(out.at({ 0, 0 }), 4.0);  // 1 + 3
    EXPECT_DOUBLE_EQ(out.at({ 0, 1 }), 5.0);  // 2 + 3
    EXPECT_DOUBLE_EQ(out.at({ 1, 0 }), 10.0); // 4 + 6
    EXPECT_DOUBLE_EQ(out.at({ 1, 1 }), 11.0); // 5 + 6
}

TEST(EvaluateEinsum, MaxReduction)
{
    DimEnv env{ { "m", 2 }, { "k", 3 } };
    Bindings b;
    Tensor a({ 2, 3 });
    a.at({ 0, 1 }) = 5.0;
    a.at({ 1, 2 }) = -1.0;
    a.at({ 1, 0 }) = -3.0;
    a.at({ 1, 1 }) = -2.0;
    a.at({ 0, 0 }) = 1.0;
    a.at({ 0, 2 }) = 2.0;
    b["A"] = a;

    Einsum m("M", { "m" });
    m.input("A", { "m", "k" }).reduce(ReduceOp::Max);
    const Tensor out = evaluateEinsum(m, env, b);
    EXPECT_DOUBLE_EQ(out.at({ 0 }), 5.0);
    EXPECT_DOUBLE_EQ(out.at({ 1 }), -1.0);
}

TEST(EvaluateEinsum, BroadcastSubtractExp)
{
    // SLN-style: S[m,k] = exp(A[m,k] - G[m]).
    DimEnv env{ { "m", 2 }, { "k", 2 } };
    Bindings b;
    Tensor a({ 2, 2 });
    a.at({ 0, 0 }) = 1;
    a.at({ 0, 1 }) = 2;
    a.at({ 1, 0 }) = 3;
    a.at({ 1, 1 }) = 3;
    Tensor g({ 2 });
    g.at({ 0 }) = 2;
    g.at({ 1 }) = 3;
    b["A"] = a;
    b["G"] = g;

    Einsum s("S", { "m", "k" });
    s.input("A", { "m", "k" }).input("G", { "m" })
        .combine(CombineOp::Sub).unary(UnaryOp::Exp);
    const Tensor out = evaluateEinsum(s, env, b);
    EXPECT_NEAR(out.at({ 0, 0 }), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(out.at({ 0, 1 }), 1.0, 1e-12);
    EXPECT_NEAR(out.at({ 1, 1 }), 1.0, 1e-12);
}

TEST(EvaluateEinsum, ScaleFactorApplied)
{
    DimEnv env{ { "m", 3 } };
    Bindings b;
    Tensor a({ 3 }, 2.0);
    b["A"] = a;
    Einsum m("M", { "m" });
    m.input("A", { "m" }).scale(0.5);
    const Tensor out = evaluateEinsum(m, env, b);
    for (std::int64_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(out.flat(i), 1.0);
}

TEST(EvaluateEinsum, OutputBroadcastFromScalarInput)
{
    // N[m] = D[m] * S[] is not used; instead test output index
    // present in only one input: N[m,k] = D[m] * E[k].
    DimEnv env{ { "m", 2 }, { "k", 2 } };
    Bindings b;
    Tensor dd({ 2 });
    dd.at({ 0 }) = 2;
    dd.at({ 1 }) = 3;
    Tensor e({ 2 });
    e.at({ 0 }) = 10;
    e.at({ 1 }) = 100;
    b["D"] = dd;
    b["E"] = e;
    Einsum n("N", { "m", "k" });
    n.input("D", { "m" }).input("E", { "k" })
        .combine(CombineOp::Mul);
    const Tensor out = evaluateEinsum(n, env, b);
    EXPECT_DOUBLE_EQ(out.at({ 0, 0 }), 20.0);
    EXPECT_DOUBLE_EQ(out.at({ 1, 1 }), 300.0);
}

TEST(EvaluateEinsum, UnboundInputIsFatal)
{
    DimEnv env{ { "m", 2 } };
    Einsum m("M", { "m" });
    m.input("A", { "m" });
    EXPECT_THROW(evaluateEinsum(m, env, {}), FatalError);
}

TEST(EvaluateEinsum, ShapeMismatchPanics)
{
    DimEnv env{ { "m", 2 } };
    Bindings b;
    b["A"] = Tensor({ 3 });
    Einsum m("M", { "m" });
    m.input("A", { "m" });
    EXPECT_THROW(evaluateEinsum(m, env, b), PanicError);
}

TEST(EvaluateEinsum, RecurrentOpRejected)
{
    DimEnv env{ { "m", 2 } };
    Bindings b;
    b["L"] = Tensor({ 2 });
    Einsum r("R", { "m" });
    r.input("R", { "m" }).input("L", { "m" })
        .combine(CombineOp::Max).recurrentOver("m1");
    EXPECT_THROW(evaluateEinsum(r, env, b), FatalError);
}

TEST(EvaluateCascade, ChainsResults)
{
    // Y = A + B; Z = relu(Y); executes in dependency order.
    DimEnv env{ { "m", 2 } };
    Cascade c("chain");
    c.add(Einsum("Y", { "m" })
              .input("A", { "m" }).input("B", { "m" })
              .combine(CombineOp::Add));
    c.add(Einsum("Z", { "m" })
              .input("Y", { "m" }).unary(UnaryOp::Relu));

    Bindings in;
    Tensor a({ 2 });
    a.at({ 0 }) = -5;
    a.at({ 1 }) = 2;
    Tensor bb({ 2 });
    bb.at({ 0 }) = 1;
    bb.at({ 1 }) = 3;
    in["A"] = a;
    in["B"] = bb;

    const Bindings out = evaluateCascade(c, env, in);
    EXPECT_DOUBLE_EQ(out.at("Y").at({ 0 }), -4.0);
    EXPECT_DOUBLE_EQ(out.at("Z").at({ 0 }), 0.0);
    EXPECT_DOUBLE_EQ(out.at("Z").at({ 1 }), 5.0);
}

} // namespace
} // namespace transfusion::ref
