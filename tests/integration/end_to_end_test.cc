/**
 * @file
 * Integration tests asserting the paper's qualitative results hold
 * end-to-end in this reproduction: who wins, where the fusion and
 * pipelining gains concentrate, and how utilization and energy
 * behave across architectures (Sec. 6.2).  These are the "shape"
 * checks for Figures 8-13.
 */

#include <gtest/gtest.h>

#include "common/math_utils.hh"
#include "sim/compare.hh"

namespace transfusion
{
namespace
{

using schedule::StrategyKind;

schedule::EvaluatorOptions
fastOptions()
{
    schedule::EvaluatorOptions o;
    o.mcts.iterations = 512;
    return o;
}

TEST(EndToEnd, TransFusionBeatsEveryBaselineEverywhere)
{
    // Fig. 8 headline: TransFusion is fastest at every point.
    for (const auto *arch_name : { "cloud", "edge" }) {
        const auto arch = arch::archByName(arch_name);
        const auto cfg = model::bertBase();
        for (std::int64_t seq : { std::int64_t{1} << 10,
                                  std::int64_t{1} << 16 }) {
            const auto all =
                sim::evaluateAll(arch, cfg, seq, fastOptions());
            const double tf =
                all.at(StrategyKind::TransFusion).total.latency_s;
            for (auto kind : schedule::allStrategies()) {
                if (kind == StrategyKind::TransFusion)
                    continue;
                EXPECT_LT(tf, all.at(kind).total.latency_s * 1.001)
                    << arch_name << " P=" << seq << " vs "
                    << toString(kind);
            }
        }
    }
}

TEST(EndToEnd, LayerFusionGainConcentratesAtShortSequences)
{
    // Fig. 8a: the LayerFuse-over-FuseMax gain (green bar) is
    // largest at 1K and fades as sequences grow compute-bound.
    const auto arch = arch::cloudArch();
    const auto cfg = model::llama3_8b();
    auto gain = [&](std::int64_t seq) {
        const auto all =
            sim::evaluateAll(arch, cfg, seq, fastOptions());
        return all.at(StrategyKind::FuseMax).total.latency_s
            / all.at(StrategyKind::FuseMaxLayerFuse)
                  .total.latency_s;
    };
    const double at_1k = gain(1 << 10);
    const double at_256k = gain(256 << 10);
    EXPECT_GT(at_1k, 1.2);
    EXPECT_LT(at_256k, at_1k);
    EXPECT_LT(at_256k, 1.15);
}

TEST(EndToEnd, SpeedupContributionShiftsToMhaAtLongSequences)
{
    // Fig. 11: short sequences gain mostly in LayerNorm/FFN
    // (fusion); long sequences gain mostly in MHA (DPipe against
    // the quadratic bottleneck).
    const auto arch = arch::cloudArch();
    const auto cfg = model::llama3_8b();
    auto contribution = [&](std::int64_t seq) {
        schedule::Evaluator eval(arch, cfg, seq, fastOptions());
        const auto fuse = eval.evaluate(StrategyKind::FuseMax);
        const auto tf = eval.evaluate(StrategyKind::TransFusion);
        return sim::speedupContribution(fuse, tf);
    };
    const auto short_c = contribution(1 << 10);
    const auto long_c = contribution(1 << 20);
    const auto mha = schedule::layerIndex(model::LayerKind::Mha);
    EXPECT_GT(long_c[mha], 0.8);
    EXPECT_GT(long_c[mha], short_c[mha]);
}

TEST(EndToEnd, EnergyNeverWorseThanFuseMax)
{
    // Fig. 12: TransFusion's energy tracks or beats FuseMax.
    for (const auto *arch_name : { "cloud", "edge" }) {
        const auto arch = arch::archByName(arch_name);
        const auto all = sim::evaluateAll(arch, model::bertBase(),
                                          16384, fastOptions());
        EXPECT_LE(all.at(StrategyKind::TransFusion)
                      .total.energy.total(),
                  all.at(StrategyKind::FuseMax)
                          .total.energy.total()
                      * 1.01)
            << arch_name;
    }
}

TEST(EndToEnd, CloudEnergyIsComputeDominated)
{
    // Fig. 13a: on the cloud, PE + RF dominate; DRAM is small.
    const auto all = sim::evaluateAll(
        arch::cloudArch(), model::llama3_8b(), 65536,
        fastOptions());
    const auto &e =
        all.at(StrategyKind::TransFusion).total.energy;
    EXPECT_GT((e.pe_j + e.rf_j) / e.total(), 0.5);
    EXPECT_LT(e.dram_j / e.total(), 0.3);
}

TEST(EndToEnd, EdgeFuseMaxSpendsVisiblyOnDram)
{
    // Fig. 13b: at short sequences on the edge, FuseMax spends a
    // visible share (paper: up to ~25%) of energy in DRAM, more
    // than TransFusion spends.
    const auto all = sim::evaluateAll(
        arch::edgeArch(), model::bertBase(), 1024, fastOptions());
    const auto &fuse = all.at(StrategyKind::FuseMax).total.energy;
    const auto &tf =
        all.at(StrategyKind::TransFusion).total.energy;
    EXPECT_GT(fuse.dram_j / fuse.total(), 0.05);
    EXPECT_LT(tf.dram_j / tf.total(),
              fuse.dram_j / fuse.total());
}

TEST(EndToEnd, EdgeOneDUtilizationIsHighUnderTransFusion)
{
    // Sec. 6.2: on the edge DPipe prioritizes the 1D array
    // (paper reports ~82% average).
    const auto a = arch::edgeArch();
    const auto all = sim::evaluateAll(a, model::llama3_8b(), 65536,
                                      fastOptions());
    EXPECT_GT(all.at(StrategyKind::TransFusion).utilization1d(a),
              0.5);
    EXPECT_GT(all.at(StrategyKind::TransFusion).utilization1d(a),
              all.at(StrategyKind::FuseMax).utilization1d(a));
}

TEST(EndToEnd, BiggerEdgeArraysKeepTheWin)
{
    // Fig. 9: TransFusion's advantage survives 32x32 and 64x64
    // edge arrays.
    for (const auto *arch_name : { "edge32", "edge64" }) {
        const auto all = sim::evaluateAll(
            arch::archByName(arch_name), model::bertBase(), 65536,
            fastOptions());
        EXPECT_LT(all.at(StrategyKind::TransFusion)
                      .total.latency_s,
                  all.at(StrategyKind::FuseMax).total.latency_s)
            << arch_name;
    }
}

TEST(EndToEnd, AllFiveModelsShowTheWin)
{
    // Fig. 8b: the ordering holds across the model zoo at 64K.
    for (const auto &cfg : model::allModels()) {
        const auto all = sim::evaluateAll(
            arch::cloudArch(), cfg, 65536, fastOptions());
        EXPECT_LT(
            all.at(StrategyKind::TransFusion).total.latency_s,
            all.at(StrategyKind::FuseMax).total.latency_s)
            << cfg.name;
        EXPECT_LT(all.at(StrategyKind::FuseMax).total.latency_s,
                  all.at(StrategyKind::Unfused).total.latency_s)
            << cfg.name;
    }
}

TEST(EndToEnd, GeomeanSpeedupsInPaperBallpark)
{
    // Headline numbers: geomean TransFusion-over-FuseMax of ~1.6x
    // (cloud) and ~2.2x (edge).  The reproduction must land in a
    // generous band around them (substrate differs; DESIGN.md).
    for (const auto *arch_name : { "cloud", "edge" }) {
        const auto arch = arch::archByName(arch_name);
        std::vector<double> speedups;
        for (std::int64_t seq : { std::int64_t{1} << 10,
                                  std::int64_t{1} << 14,
                                  std::int64_t{1} << 18 }) {
            const auto all = sim::evaluateAll(
                arch, model::bertBase(), seq, fastOptions());
            speedups.push_back(
                all.at(StrategyKind::FuseMax).total.latency_s
                / all.at(StrategyKind::TransFusion)
                      .total.latency_s);
        }
        const double gm = geometricMean(speedups);
        EXPECT_GT(gm, 1.2) << arch_name;
        EXPECT_LT(gm, 4.0) << arch_name;
    }
}

} // namespace
} // namespace transfusion
