/**
 * @file
 * The strongest functional obligation: chaining the paper's four
 * cascades -- QKV (Cascade 2, via the interpreter), 1-pass MHA
 * (Cascade 1, via the streaming implementation), Add & LayerNorm
 * (Cascade 3) and FFN (Cascade 4) -- reproduces the monolithic
 * reference Transformer layer bit-for-bit.  This is the "end-to-end
 * fusion preserves computation semantics" claim (Sec. 7) executed
 * on real tensors, swept over shapes and tilings.
 */

#include <gtest/gtest.h>

#include "model/cascades.hh"
#include "ref/interpreter.hh"
#include "ref/reference.hh"
#include "ref/streaming_attention.hh"

namespace transfusion
{
namespace
{

using ref::Bindings;
using ref::Tensor;

struct LayerCase
{
    std::int64_t h, e, s, p, m0, m1;
    einsum::UnaryOp act;
};

class FullLayerEquivalence
    : public ::testing::TestWithParam<LayerCase>
{};

TEST_P(FullLayerEquivalence, FusedStackMatchesReferenceLayer)
{
    const auto c = GetParam();
    model::TransformerConfig cfg;
    cfg.name = "case";
    cfg.layers = 1;
    cfg.heads = c.h;
    cfg.head_dim = c.e;
    cfg.d_model = c.h * c.e;
    cfg.ffn_hidden = c.s;
    cfg.activation = c.act;
    cfg.batch = 1;
    // Self-attention: the streamed context equals the queries.
    ASSERT_EQ(c.m0 * c.m1, c.p);
    const auto dims = model::makeDims(cfg, c.p, c.m0, c.m1);

    Rng rng(31337 + static_cast<std::uint64_t>(
        c.h * 7 + c.p * 3 + c.s));
    const Tensor input = Tensor::random({ cfg.d_model, c.p }, rng);
    const Tensor wq = Tensor::random(
        { cfg.d_model, c.h, c.e }, rng, -0.4, 0.4);
    const Tensor wk = Tensor::random(
        { cfg.d_model, c.h, c.e }, rng, -0.4, 0.4);
    const Tensor wv = Tensor::random(
        { cfg.d_model, c.h, c.e }, rng, -0.4, 0.4);
    const Tensor wf1 = Tensor::random(
        { c.h, c.e, c.s }, rng, -0.4, 0.4);
    const Tensor bf1 = Tensor::random({ c.s }, rng);
    const Tensor wf2 = Tensor::random(
        { c.h, c.e, c.s }, rng, -0.4, 0.4);
    const Tensor bf2 = Tensor::random({ c.h, c.e }, rng);

    // ---- Reference: the monolithic unfused layer.
    const Tensor expect = ref::transformerLayer(
        input, wq, wk, wv, wf1, bf1, wf2, bf2, c.act);

    // ---- Fused path, cascade by cascade.
    // INPUT_KV is INPUT reorganized into (m1, m0) context blocks.
    Tensor input_kv({ cfg.d_model, c.m1, c.m0 });
    for (std::int64_t d = 0; d < cfg.d_model; ++d) {
        for (std::int64_t i = 0; i < c.p; ++i) {
            input_kv.at({ d, i / c.m0, i % c.m0 }) =
                input.at({ d, i });
        }
    }
    Bindings env;
    env["INPUT"] = input;
    env["INPUT_KV"] = input_kv;
    env["WQ"] = wq;
    env["WK"] = wk;
    env["WV"] = wv;
    env = ref::evaluateCascade(model::buildQkvCascade(), dims,
                               std::move(env));

    // Cascade 1 runs as the streaming 1-pass recurrence.
    Tensor k_flat({ c.h, c.e, c.p }), v_flat({ c.h, c.e, c.p });
    for (std::int64_t h = 0; h < c.h; ++h) {
        for (std::int64_t e = 0; e < c.e; ++e) {
            for (std::int64_t i = 0; i < c.p; ++i) {
                k_flat.at({ h, e, i }) =
                    env.at("BK").at({ h, e, i / c.m0, i % c.m0 });
                v_flat.at({ h, e, i }) =
                    env.at("BV").at({ h, e, i / c.m0, i % c.m0 });
            }
        }
    }
    const Tensor av = ref::streamingAttention(env.at("Q"), k_flat,
                                              v_flat, c.m0);

    // Residual input reshaped [d,p] -> [h,f,p], as in Sec. 3.2.
    Tensor residual({ c.h, c.e, c.p });
    for (std::int64_t h = 0; h < c.h; ++h) {
        for (std::int64_t e = 0; e < c.e; ++e) {
            for (std::int64_t i = 0; i < c.p; ++i) {
                residual.at({ h, e, i }) =
                    input.at({ h * c.e + e, i });
            }
        }
    }
    Bindings ln;
    ln["INP"] = residual;
    ln["AV"] = av;
    ln = ref::evaluateCascade(
        model::buildCascade(model::LayerKind::LayerNorm, cfg),
        dims, std::move(ln));

    Bindings ffn;
    ffn["NR"] = ln.at("NR");
    ffn["WF1"] = wf1;
    ffn["BF1"] = bf1;
    ffn["WF2"] = wf2;
    ffn["BF2"] = bf2;
    ffn = ref::evaluateCascade(model::buildFfnCascade(c.act), dims,
                               std::move(ffn));

    EXPECT_LT(Tensor::maxAbsDiff(ffn.at("FFN2B"), expect), 1e-8)
        << "h=" << c.h << " e=" << c.e << " p=" << c.p
        << " m0=" << c.m0;
}

INSTANTIATE_TEST_SUITE_P(
    ShapeAndTilingSweep, FullLayerEquivalence,
    ::testing::Values(
        LayerCase{ 2, 4, 16, 6, 3, 2, einsum::UnaryOp::Relu },
        LayerCase{ 2, 4, 16, 6, 2, 3, einsum::UnaryOp::Relu },
        LayerCase{ 2, 4, 16, 6, 6, 1, einsum::UnaryOp::Relu },
        LayerCase{ 2, 4, 16, 6, 1, 6, einsum::UnaryOp::Relu },
        LayerCase{ 4, 8, 32, 8, 4, 2, einsum::UnaryOp::Gelu },
        LayerCase{ 1, 8, 24, 10, 5, 2, einsum::UnaryOp::Silu },
        LayerCase{ 3, 4, 12, 4, 2, 2, einsum::UnaryOp::Gelu },
        LayerCase{ 2, 16, 64, 12, 4, 3, einsum::UnaryOp::Silu }));

} // namespace
} // namespace transfusion
