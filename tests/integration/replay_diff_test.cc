/**
 * @file
 * Differential replay harness: the legacy linear-scan simulation
 * cores and the event-heap cores (serve::SimCoreKind) must be
 * observably indistinguishable — not approximately, bitwise.  Every
 * cell of a seed x routing-policy x fault-schedule grid replays the
 * same trace through both cores and compares the FleetMetrics field
 * by field, the latency histograms sample-set by sample-set, and
 * the captured RunReports string by string.
 *
 * The same harness pins the CostTableCache's transparency: a fleet
 * calibrated with memoization disabled must produce the same
 * report as one served from the cache, including the replayed
 * construction-time observability.
 *
 * This is the lock the tentpole rework turns: any divergence a
 * future core change introduces fails here first, with the exact
 * grid cell named.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "costmodel/cost_table_cache.hh"
#include "fleet/fleet_sim.hh"
#include "obs/obs.hh"
#include "obs/report.hh"
#include "serve/workload.hh"

namespace transfusion
{
namespace
{

/** Saturating burst: arrivals far outpace one replica, so queues,
 *  sheds, and multi-round batches all occur. */
serve::WorkloadOptions
diffWorkload()
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s = 400.0;
    wl.requests = 32;
    wl.prompt = { 128, 256 };
    wl.output = { 16, 32 };
    return wl;
}

fleet::FleetOptions
fleetOptions(serve::SimCoreKind core)
{
    fleet::FleetOptions o;
    o.serve.strategy = schedule::StrategyKind::TransFusion;
    o.serve.max_batch = 4;
    o.serve.core = core;
    o.serve.cost.cache_samples = 3;
    o.serve.cost.prefill_samples = 3;
    o.serve.cost.evaluator.mcts.iterations = 32;
    o.core = core;
    o.threads = 1;
    o.plan_threads = 1;
    return o;
}

/** One named per-replica fault assignment for the grid. */
struct FaultCase
{
    std::string name;
    std::vector<fault::FaultSchedule> faults;
};

std::vector<FaultCase>
faultCases()
{
    // Replica 1 loses its only chip mid-burst and recovers: the
    // down span drains it and failover re-offers its work.
    fault::FaultSchedule loss;
    loss.events.push_back({ 0.05, fault::FaultKind::ChipLoss, 0 });
    loss.events.push_back(
        { 0.40, fault::FaultKind::ChipRecovery, 0 });

    // A degraded-then-restored link opens no down span, so this
    // case pins that the event core agrees with legacy about
    // *non*-boundaries too.
    fault::FaultSchedule degrade;
    fault::FaultEvent slow;
    slow.time_s = 0.05;
    slow.kind = fault::FaultKind::LinkDegrade;
    slow.factor = 0.5;
    fault::FaultEvent restore = slow;
    restore.time_s = 0.50;
    restore.factor = 1.0;
    degrade.events.push_back(slow);
    degrade.events.push_back(restore);

    std::vector<FaultCase> cases;
    cases.push_back({ "empty", {} });
    cases.push_back({ "chip-loss", { {}, loss } });
    cases.push_back({ "link-degrade", { degrade } });
    return cases;
}

/** Histograms carry the raw samples; equal counts, bitwise-equal
 *  sums, and bitwise-equal order statistics pin the sample sets. */
void
expectSameHistogram(const Histogram &a, const Histogram &b,
                    const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_EQ(a.count(), b.count());
    EXPECT_EQ(a.sum(), b.sum());
    for (const double p : { 0.0, 25.0, 50.0, 75.0, 99.0, 100.0 })
        EXPECT_EQ(a.percentileOr(p, -1.0), b.percentileOr(p, -1.0))
            << "p" << p;
}

void
expectSameServeMetrics(const serve::ServeMetrics &a,
                       const serve::ServeMetrics &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.generated_tokens, b.generated_tokens);
    EXPECT_EQ(a.prefill_rounds, b.prefill_rounds);
    EXPECT_EQ(a.decode_rounds, b.decode_rounds);
    EXPECT_EQ(a.peak_running, b.peak_running);
    EXPECT_EQ(a.peak_queue, b.peak_queue);
    EXPECT_EQ(a.peak_reserved_words, b.peak_reserved_words);
    EXPECT_EQ(a.kv_capacity_words, b.kv_capacity_words);
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.tokens_per_second, b.tokens_per_second);
    EXPECT_EQ(a.prefill_energy_j, b.prefill_energy_j);
    EXPECT_EQ(a.decode_energy_j, b.decode_energy_j);
    EXPECT_EQ(a.chip_seconds, b.chip_seconds);
    expectSameHistogram(a.ttft_s, b.ttft_s, "ttft");
    expectSameHistogram(a.tpot_s, b.tpot_s, "tpot");
    expectSameHistogram(a.latency_s, b.latency_s, "latency");
    expectSameHistogram(a.queue_wait_s, b.queue_wait_s,
                        "queue_wait");
}

void
expectSameFleetMetrics(const fleet::FleetMetrics &a,
                       const fleet::FleetMetrics &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.generated_tokens, b.generated_tokens);
    EXPECT_EQ(a.routed, b.routed);
    EXPECT_EQ(a.held_rejected, b.held_rejected);
    EXPECT_EQ(a.replica_downs, b.replica_downs);
    EXPECT_EQ(a.replica_ups, b.replica_ups);
    EXPECT_EQ(a.failover_drained, b.failover_drained);
    EXPECT_EQ(a.failover_reroutes, b.failover_reroutes);
    EXPECT_EQ(a.failover_exhausted, b.failover_exhausted);
    EXPECT_EQ(a.failover_wasted_tokens, b.failover_wasted_tokens);
    EXPECT_EQ(a.autoscaler_ticks, b.autoscaler_ticks);
    EXPECT_EQ(a.scale_ups, b.scale_ups);
    EXPECT_EQ(a.scale_downs, b.scale_downs);
    EXPECT_EQ(a.peak_serving, b.peak_serving);
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.completed_per_second, b.completed_per_second);
    EXPECT_EQ(a.energy_j, b.energy_j);
    EXPECT_EQ(a.chip_seconds, b.chip_seconds);
    expectSameHistogram(a.ttft_s, b.ttft_s, "fleet ttft");
    expectSameHistogram(a.tpot_s, b.tpot_s, "fleet tpot");
    expectSameHistogram(a.latency_s, b.latency_s, "fleet latency");
    expectSameHistogram(a.queue_wait_s, b.queue_wait_s,
                        "fleet queue_wait");
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (std::size_t i = 0; i < a.replicas.size(); ++i) {
        SCOPED_TRACE("replica " + std::to_string(i));
        expectSameServeMetrics(a.replicas[i], b.replicas[i]);
    }
}

/** Replay under a scoped registry; return (metrics, report). */
std::pair<fleet::FleetMetrics, std::string>
replay(const fleet::FleetSimulator &fleet,
       const std::vector<serve::Request> &trace,
       const fleet::FleetRunOptions &run)
{
    obs::Registry local;
    fleet::FleetMetrics m;
    {
        obs::ScopedRegistry scope(local);
        m = fleet.run(trace, run);
    }
    return { std::move(m),
             obs::RunReport::capture(local).toString() };
}

/**
 * The full grid: >= 3 seeds x all 5 policies x {empty, chip-loss,
 * link-degrade}, legacy vs event cores side by side.  Only the
 * replay is per-cell; both fleets are calibrated once (cores share
 * cost tables by construction, which is itself part of the claim).
 */
TEST(ReplayDiff, FleetGridLegacyVsEventHeapBitwise)
{
    const auto cluster = multichip::edgeCluster(1);
    const auto cfg = model::t5Small();
    const auto wl = diffWorkload();

    const auto legacy = fleet::FleetSimulator::uniform(
        3, cluster, cfg, wl,
        fleetOptions(serve::SimCoreKind::Legacy));
    const auto event = fleet::FleetSimulator::uniform(
        3, cluster, cfg, wl,
        fleetOptions(serve::SimCoreKind::EventHeap));

    const auto cases = faultCases();
    for (const std::uint64_t seed : { 1u, 2u, 3u }) {
        const auto trace = serve::generateWorkload(wl, seed);
        for (const fleet::PolicyKind policy :
             fleet::allPolicies()) {
            for (const FaultCase &fc : cases) {
                SCOPED_TRACE("seed " + std::to_string(seed)
                             + " policy "
                             + fleet::toString(policy) + " faults "
                             + fc.name);
                fleet::FleetRunOptions run;
                run.policy = policy;
                run.seed = seed;
                run.faults = fc.faults;
                const auto [ml, rl] = replay(legacy, trace, run);
                const auto [me, re] = replay(event, trace, run);
                expectSameFleetMetrics(ml, me);
                EXPECT_EQ(rl, re)
                    << obs::RunReport::diff(rl, re);
            }
        }
    }
}

/** The serve layer alone, below any router: legacy and event-heap
 *  session loops replay identical traces identically. */
TEST(ReplayDiff, ServeLegacyVsEventHeapBitwise)
{
    const auto arch = arch::edgeArch();
    const auto cfg = model::t5Small();
    const auto wl = diffWorkload();

    serve::ServeOptions legacy_opts;
    legacy_opts.core = serve::SimCoreKind::Legacy;
    legacy_opts.max_batch = 4;
    legacy_opts.cost.cache_samples = 3;
    legacy_opts.cost.prefill_samples = 3;
    legacy_opts.cost.evaluator.mcts.iterations = 32;
    serve::ServeOptions event_opts = legacy_opts;
    event_opts.core = serve::SimCoreKind::EventHeap;

    const serve::ServeSimulator legacy(arch, cfg, wl, legacy_opts);
    const serve::ServeSimulator event(arch, cfg, wl, event_opts);
    for (const std::uint64_t seed : { 1u, 7u, 23u }) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const auto trace = serve::generateWorkload(wl, seed);
        expectSameServeMetrics(legacy.run(trace),
                               event.run(trace));
    }
}

/**
 * Cache transparency: calibrating with the CostTableCache disabled
 * (every Evaluator table recomputed) and calibrating through the
 * cache produce bitwise-identical construction reports and replay
 * metrics.  The disabled run goes first so this test cannot be
 * satisfied by two hits on one stale entry.
 */
TEST(ReplayDiff, CostTableCacheIsObservablyTransparent)
{
    const auto cluster = multichip::edgeCluster(1);
    const auto cfg = model::t5Small();
    const auto wl = diffWorkload();
    const auto opts = fleetOptions(serve::SimCoreKind::EventHeap);
    const auto trace = serve::generateWorkload(wl, 5);
    fleet::FleetRunOptions run;
    run.policy = fleet::PolicyKind::PowerOfTwo;
    run.seed = 5;

    const auto build = [&]() {
        obs::Registry local;
        fleet::FleetMetrics m;
        std::string construction;
        {
            obs::ScopedRegistry scope(local);
            const auto fleet = fleet::FleetSimulator::uniform(
                2, cluster, cfg, wl, opts);
            construction =
                obs::RunReport::capture(local).toString();
            m = fleet.run(trace, run);
        }
        return std::make_pair(
            construction + "\n---\n"
                + obs::RunReport::capture(local).toString(),
            std::move(m));
    };

    std::string uncached_report;
    fleet::FleetMetrics uncached_metrics;
    {
        costmodel::CostTableCacheDisabled off;
        std::tie(uncached_report, uncached_metrics) = build();
    }
    const auto [cached_report, cached_metrics] = build();
    EXPECT_EQ(uncached_report, cached_report)
        << obs::RunReport::diff(uncached_report, cached_report);
    expectSameFleetMetrics(uncached_metrics, cached_metrics);
}

} // namespace
} // namespace transfusion
