/**
 * @file
 * Robustness property tests (DESIGN.md §5): the qualitative results
 * must survive perturbation of the modelling constants -- energy
 * table entries swept +-2x, the unfused re-read factor swept, and
 * the DPipe offload lane cap varied.  If a headline ordering ever
 * depends on one finely tuned constant, these tests catch it.
 */

#include <gtest/gtest.h>

#include "sim/compare.hh"

namespace transfusion
{
namespace
{

using schedule::StrategyKind;

schedule::EvaluatorOptions
fastOptions()
{
    schedule::EvaluatorOptions o;
    o.mcts.iterations = 256;
    return o;
}

TEST(Robustness, EnergyOrderingSurvivesConstantSweep)
{
    // TransFusion <= FuseMax <= Unfused in energy, for every +-2x
    // scaling of each energy constant independently.
    const auto cfg = model::bertBase();
    const std::int64_t seq = 16384;

    for (int knob = 0; knob < 4; ++knob) {
        for (double scale : { 0.5, 2.0 }) {
            auto arch = arch::edgeArch();
            switch (knob) {
              case 0: arch.energy.mac_pj *= scale; break;
              case 1: arch.energy.reg_pj *= scale; break;
              case 2: arch.energy.buffer_pj *= scale; break;
              case 3: arch.energy.dram_pj_per_byte *= scale; break;
            }
            const auto all =
                sim::evaluateAll(arch, cfg, seq, fastOptions());
            const double tf = all.at(StrategyKind::TransFusion)
                                  .total.energy.total();
            const double fm = all.at(StrategyKind::FuseMax)
                                  .total.energy.total();
            const double un = all.at(StrategyKind::Unfused)
                                  .total.energy.total();
            EXPECT_LE(tf, fm * 1.01)
                << "knob " << knob << " scale " << scale;
            EXPECT_LT(fm, un) << "knob " << knob << " scale "
                              << scale;
        }
    }
}

TEST(Robustness, SpeedupOrderingSurvivesRereadFactor)
{
    // The latency ordering must not hinge on the unfused traffic
    // pessimism factor.
    const auto arch = arch::cloudArch();
    const auto cfg = model::bertBase();
    for (double rr : { 1.0, 2.0, 4.0 }) {
        auto opts = fastOptions();
        opts.unfused_reread_factor = rr;
        schedule::Evaluator eval(arch, cfg, 16384, opts);
        const double un =
            eval.evaluate(StrategyKind::Unfused).total.latency_s;
        const double fm =
            eval.evaluate(StrategyKind::FuseMax).total.latency_s;
        const double tf = eval.evaluate(StrategyKind::TransFusion)
                              .total.latency_s;
        EXPECT_GT(un, fm) << "rr=" << rr;
        EXPECT_GT(fm, tf) << "rr=" << rr;
    }
}

TEST(Robustness, DPipeWinSurvivesOffloadCapSweep)
{
    // Even with a pessimistic vector-on-2D lane cap, TransFusion
    // must not lose to FuseMax (the plan search includes FuseMax's
    // own static split as a fallback).
    const auto cfg = model::llama3_8b();
    for (double lanes : { 256.0, 1024.0, 4096.0 }) {
        auto opts = fastOptions();
        opts.pipeline.latency.vector_on_2d_max_lanes = lanes;
        schedule::Evaluator eval(arch::cloudArch(), cfg, 65536,
                                 opts);
        const double fm =
            eval.evaluate(StrategyKind::FuseMax).total.latency_s;
        const double tf = eval.evaluate(StrategyKind::TransFusion)
                              .total.latency_s;
        EXPECT_LE(tf, fm * 1.001) << "lanes=" << lanes;
    }
}

TEST(Robustness, GainsScaleMonotonicallyWithOffloadCap)
{
    // More offload bandwidth can only help TransFusion's MHA.
    const auto cfg = model::llama3_8b();
    double prev = 0;
    for (double lanes : { 256.0, 1024.0, 4096.0 }) {
        auto opts = fastOptions();
        opts.pipeline.latency.vector_on_2d_max_lanes = lanes;
        schedule::Evaluator eval(arch::cloudArch(), cfg, 65536,
                                 opts);
        const double fm =
            eval.evaluate(StrategyKind::FuseMax).total.latency_s;
        const double tf = eval.evaluate(StrategyKind::TransFusion)
                              .total.latency_s;
        const double gain = fm / tf;
        EXPECT_GE(gain, prev - 0.05) << "lanes=" << lanes;
        prev = gain;
    }
}

} // namespace
} // namespace transfusion
