/**
 * @file
 * Integration test behind bench/ext_fleet_scaling.cc: at a fixed
 * offered load that saturates a single replica, completed
 * throughput must increase monotonically with the replica count
 * under every load-balancing policy (pass-through pins the whole
 * trace on replica 0, so it is the flat control, not part of the
 * monotonicity claim).
 */

#include <vector>

#include <gtest/gtest.h>

#include "fleet/fleet_sim.hh"
#include "serve/workload.hh"

namespace transfusion::fleet
{
namespace
{

/** The bench's saturating trace, shrunk for test budget: the
 *  burst arrives in ~0.1 s, far faster than one replica serves. */
serve::WorkloadOptions
saturatingWorkload()
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s = 400.0;
    wl.requests = 48;
    wl.prompt = { 128, 256 };
    wl.output = { 16, 32 };
    return wl;
}

FleetOptions
fastFleet()
{
    FleetOptions o;
    o.serve.strategy = schedule::StrategyKind::TransFusion;
    o.serve.max_batch = 4;
    o.serve.cost.cache_samples = 3;
    o.serve.cost.prefill_samples = 3;
    o.serve.cost.evaluator.mcts.iterations = 32;
    o.threads = 1;
    o.plan_threads = 1;
    return o;
}

TEST(FleetScaling, ThroughputGrowsMonotonicallyWithReplicaCount)
{
    const auto cluster = multichip::edgeCluster(1);
    const auto cfg = model::t5Small();
    const auto wl = saturatingWorkload();
    const auto trace = serve::generateWorkload(wl, 1);

    for (const PolicyKind policy :
         { PolicyKind::RoundRobin, PolicyKind::LeastOutstanding,
           PolicyKind::KvPressure, PolicyKind::PowerOfTwo }) {
        SCOPED_TRACE("policy " + toString(policy));
        std::vector<double> throughput;
        for (int n : { 1, 2, 4 }) {
            const auto fleet = FleetSimulator::uniform(
                n, cluster, cfg, wl, fastFleet());
            FleetRunOptions run;
            run.policy = policy;
            const auto m = fleet.run(trace, run);
            // The whole trace completes at every size — the load
            // saturates time, not the queue bound.
            EXPECT_EQ(m.completed, m.offered);
            EXPECT_EQ(m.rejected, 0);
            throughput.push_back(m.completed_per_second);
        }
        for (std::size_t i = 1; i < throughput.size(); ++i)
            EXPECT_GT(throughput[i], throughput[i - 1])
                << "completed/s must grow from "
                << (1 << (i - 1)) << " to " << (1 << i)
                << " replicas, got " << throughput[i - 1]
                << " -> " << throughput[i];
    }
}

TEST(FleetScaling, PassThroughIsTheFlatControl)
{
    const auto cluster = multichip::edgeCluster(1);
    const auto cfg = model::t5Small();
    const auto wl = saturatingWorkload();
    const auto trace = serve::generateWorkload(wl, 1);

    // Pass-through routes everything to replica 0, so adding
    // replicas changes nothing: the 4-replica replay is bitwise
    // the 1-replica one.
    FleetRunOptions run;
    run.policy = PolicyKind::PassThrough;
    const auto one = FleetSimulator::uniform(1, cluster, cfg, wl,
                                             fastFleet())
                         .run(trace, run);
    const auto four = FleetSimulator::uniform(4, cluster, cfg, wl,
                                              fastFleet())
                          .run(trace, run);
    EXPECT_EQ(one.completed, four.completed);
    EXPECT_EQ(one.makespan_s, four.makespan_s); // bitwise
    EXPECT_EQ(four.replicas[1].offered, 0);
    EXPECT_EQ(four.replicas[2].offered, 0);
    EXPECT_EQ(four.replicas[3].offered, 0);
}

} // namespace
} // namespace transfusion::fleet
