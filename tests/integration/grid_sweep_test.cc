/**
 * @file
 * Parameterized grid sweep: the evaluator's structural invariants
 * must hold at every (architecture, model, sequence) point the
 * benches visit -- positive metrics, roofline consistency, work
 * conservation between FuseMax and TransFusion, the strategy
 * ordering, and feasibility of the chosen tiles.
 */

#include <gtest/gtest.h>

#include "schedule/tiling.hh"
#include "sim/compare.hh"

namespace transfusion
{
namespace
{

using schedule::StrategyKind;

struct GridPoint
{
    const char *arch;
    const char *model;
    std::int64_t seq;
};

void
PrintTo(const GridPoint &p, std::ostream *os)
{
    *os << p.arch << "/" << p.model << "/P=" << p.seq;
}

class GridSweep : public ::testing::TestWithParam<GridPoint>
{};

TEST_P(GridSweep, InvariantsHoldEverywhere)
{
    const auto pt = GetParam();
    const auto arch = arch::archByName(pt.arch);
    const auto cfg = model::modelByName(pt.model);
    schedule::EvaluatorOptions opts;
    opts.mcts.iterations = 256;
    schedule::Evaluator eval(arch, cfg, pt.seq, opts);

    double prev_latency = 0;
    double fusemax_ops = 0, tf_ops = 0;
    for (auto kind : schedule::allStrategies()) {
        const auto r = eval.evaluate(kind);

        // Positive, roofline-consistent metrics per sub-layer.
        for (const auto &m : r.layers) {
            ASSERT_GT(m.latency_s, 0.0);
            ASSERT_GE(m.latency_s, m.compute_s - 1e-12);
            ASSERT_GE(m.latency_s, m.dram_s - 1e-12);
            ASSERT_GE(m.dram_bytes, 0.0);
            ASSERT_GT(m.energy.total(), 0.0);
        }

        // Utilizations are proper fractions.
        ASSERT_GE(r.utilization2d(arch), 0.0);
        ASSERT_LE(r.utilization2d(arch), 1.0 + 1e-9);
        ASSERT_GE(r.utilization1d(arch), 0.0);
        ASSERT_LE(r.utilization1d(arch), 1.0 + 1e-9);

        // Later strategies never lose to the Unfused baseline, and
        // TransFusion (last) is at least as fast as everything
        // before it (allowing numerical noise).
        if (kind == StrategyKind::Unfused)
            prev_latency = r.total.latency_s;
        ASSERT_LE(r.total.latency_s, prev_latency * 1.01)
            << toString(kind);
        if (kind == StrategyKind::TransFusion) {
            ASSERT_LT(r.total.latency_s, prev_latency);
            // The chosen tile must satisfy the Table 2 budget.
            ASSERT_TRUE(schedule::tileFeasible(r.tile, arch,
                                               pt.seq));
            tf_ops = r.total.ops_2d + r.total.ops_1d;
        }
        if (kind == StrategyKind::FuseMax)
            fusemax_ops = r.total.ops_2d + r.total.ops_1d;
        prev_latency = std::min(prev_latency, r.total.latency_s);
    }

    // Work conservation: FuseMax and TransFusion execute the same
    // mathematics.
    ASSERT_NEAR(fusemax_ops, tf_ops, 1e-6 * fusemax_ops);
}

INSTANTIATE_TEST_SUITE_P(
    ArchModelSeqGrid, GridSweep,
    ::testing::Values(
        GridPoint{ "cloud", "BERT", 1 << 10 },
        GridPoint{ "cloud", "BERT", 1 << 16 },
        GridPoint{ "cloud", "TrXL", 1 << 14 },
        GridPoint{ "cloud", "T5", 1 << 12 },
        GridPoint{ "cloud", "XLM", 1 << 16 },
        GridPoint{ "cloud", "Llama3", 1 << 12 },
        GridPoint{ "cloud", "Llama3", 1 << 18 },
        GridPoint{ "edge", "BERT", 1 << 10 },
        GridPoint{ "edge", "BERT", 1 << 16 },
        GridPoint{ "edge", "TrXL", 1 << 12 },
        GridPoint{ "edge", "T5", 1 << 16 },
        GridPoint{ "edge", "XLM", 1 << 14 },
        GridPoint{ "edge", "Llama3", 1 << 16 },
        GridPoint{ "edge32", "BERT", 1 << 14 },
        GridPoint{ "edge32", "Llama3", 1 << 12 },
        GridPoint{ "edge64", "T5", 1 << 14 },
        GridPoint{ "edge64", "Llama3", 1 << 16 }));

} // namespace
} // namespace transfusion
