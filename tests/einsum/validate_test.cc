/**
 * @file
 * Unit tests for the cascade validator, including the Fig. 2
 * final-slice rule and the check that every paper cascade is clean.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "einsum/validate.hh"
#include "model/cascades.hh"

namespace transfusion::einsum
{
namespace
{

TEST(Validate, AllPaperCascadesAreClean)
{
    const auto cfg = model::bertBase();
    const auto dims = model::makeDims(cfg, 64, 16, 4);
    for (auto kind : model::allLayerKinds()) {
        const auto cascade = model::buildCascade(kind, cfg);
        const auto issues = validateCascade(cascade, &dims);
        EXPECT_TRUE(issues.empty())
            << model::toString(kind) << ": "
            << (issues.empty() ? "" : issues.front().message);
        EXPECT_NO_THROW(checkCascade(cascade, &dims));
    }
    EXPECT_TRUE(
        validateCascade(model::buildUnfusedMhaCascade()).empty());
}

TEST(Validate, SignatureMismatchDetected)
{
    Cascade c("bad");
    c.add(Einsum("Y", { "m", "n" })
              .input("A", { "m", "k" })
              .input("B", { "k", "n" })
              .combine(CombineOp::Mul)
              .reduce(ReduceOp::Sum));
    // Z reads Y with the wrong arity (and Y is not recurrent).
    c.add(Einsum("Z", { "m" })
              .input("Y", { "m" })
              .unary(UnaryOp::Exp));
    const auto issues = validateCascade(c);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].kind,
              ValidationIssue::Kind::SignatureMismatch);
    EXPECT_EQ(issues[0].op, "Z");
    EXPECT_THROW(checkCascade(c), FatalError);
}

TEST(Validate, FinalSliceOfRecurrentStateAllowed)
{
    // AV-style read: drop exactly the recurrent index.
    Cascade c("slice");
    c.add(Einsum("RD", { "h", "m1", "p" })
              .input("SLD", { "h", "m1", "p" })
              .input("RD", { "h", "m1", "p" })
              .combine(CombineOp::Add)
              .recurrentOver("m1"));
    c.add(Einsum("AV", { "h", "p" })
              .input("RD", { "h", "p" })
              .unary(UnaryOp::Recip));
    EXPECT_TRUE(validateCascade(c).empty());
}

TEST(Validate, WrongSliceOfRecurrentStateRejected)
{
    // Dropping a non-recurrent index is not a final-slice read.
    Cascade c("badslice");
    c.add(Einsum("RD", { "h", "m1", "p" })
              .input("SLD", { "h", "m1", "p" })
              .input("RD", { "h", "m1", "p" })
              .combine(CombineOp::Add)
              .recurrentOver("m1"));
    c.add(Einsum("AV", { "h", "m1" })
              .input("RD", { "h", "m1" })
              .unary(UnaryOp::Recip));
    const auto issues = validateCascade(c);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].kind,
              ValidationIssue::Kind::SignatureMismatch);
}

TEST(Validate, BadRecurrenceDetected)
{
    Cascade c("badrec");
    c.add(Einsum("RM", { "h", "p" })
              .input("RM", { "h", "p" })
              .input("LM", { "h", "p" })
              .combine(CombineOp::Max)
              .recurrentOver("m1")); // m1 not in the output
    const auto issues = validateCascade(c);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].kind,
              ValidationIssue::Kind::BadRecurrence);
}

TEST(Validate, PreviousReadOfNonRecurrentRejected)
{
    Cascade c("badprev");
    c.add(Einsum("X", { "m1" }).input("I", { "m1" }));
    c.add(Einsum("Y", { "m1" })
              .inputPrevious("X", { "m1" })
              .unary(UnaryOp::Exp));
    const auto issues = validateCascade(c);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].kind,
              ValidationIssue::Kind::BadRecurrence);
}

TEST(Validate, PreviousReadOfRecurrentStateClean)
{
    Cascade c("goodprev");
    c.add(Einsum("S", { "m1" })
              .inputPrevious("S", { "m1" })
              .input("X", { "m1" })
              .combine(CombineOp::Add)
              .recurrentOver("m1"));
    EXPECT_TRUE(validateCascade(c).empty());
}

TEST(Validate, UnboundIndexDetectedOnlyWithDims)
{
    Cascade c("unbound");
    c.add(Einsum("Y", { "weird" }).input("A", { "weird" }));
    EXPECT_TRUE(validateCascade(c).empty());
    DimEnv dims{ { "m", 4 } };
    const auto issues = validateCascade(c, &dims);
    ASSERT_FALSE(issues.empty());
    EXPECT_EQ(issues[0].kind,
              ValidationIssue::Kind::UnboundIndex);
}

TEST(Validate, MissingReduceDetected)
{
    Cascade c("overwrite");
    c.add(Einsum("Y", { "m" }).input("A", { "m", "k" }));
    const auto issues = validateCascade(c);
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].kind,
              ValidationIssue::Kind::MissingReduce);
}

TEST(Validate, KindNamesPrintable)
{
    EXPECT_EQ(toString(ValidationIssue::Kind::SignatureMismatch),
              "signature-mismatch");
    EXPECT_EQ(toString(ValidationIssue::Kind::BadRecurrence),
              "bad-recurrence");
    EXPECT_EQ(toString(ValidationIssue::Kind::UnboundIndex),
              "unbound-index");
    EXPECT_EQ(toString(ValidationIssue::Kind::MissingReduce),
              "missing-reduce");
}

TEST(Validate, MultipleIssuesAllReported)
{
    Cascade c("multi");
    c.add(Einsum("Y", { "m" }).input("A", { "m", "k" }));
    c.add(Einsum("Z", { "m", "q" })
              .input("Y", { "m", "q" })
              .unary(UnaryOp::Exp));
    DimEnv dims{ { "m", 4 }, { "k", 2 } };
    const auto issues = validateCascade(c, &dims);
    // Missing reduce on Y, signature mismatch on Z, unbound q.
    EXPECT_GE(issues.size(), 3u);
}

} // namespace
} // namespace transfusion::einsum
