/**
 * @file
 * Unit tests for DimEnv, TensorRef and Einsum (including the Eq. 40
 * compute-load formula and PE-class derivation).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "einsum/einsum.hh"

namespace transfusion::einsum
{
namespace
{

TEST(DimEnv, SetAndGet)
{
    DimEnv env;
    env.set("p", 128);
    EXPECT_EQ(env.extent("p"), 128);
    EXPECT_TRUE(env.has("p"));
    EXPECT_FALSE(env.has("q"));
}

TEST(DimEnv, InitializerList)
{
    DimEnv env{ { "a", 2 }, { "b", 3 } };
    EXPECT_EQ(env.extent("a"), 2);
    EXPECT_EQ(env.extent("b"), 3);
}

TEST(DimEnv, UnboundIsFatal)
{
    DimEnv env;
    EXPECT_THROW(env.extent("missing"), FatalError);
}

TEST(DimEnv, NonPositiveExtentIsFatal)
{
    DimEnv env;
    EXPECT_THROW(env.set("p", 0), FatalError);
    EXPECT_THROW(env.set("p", -3), FatalError);
}

TEST(DimEnv, ProductOfNames)
{
    DimEnv env{ { "a", 2 }, { "b", 3 }, { "c", 5 } };
    EXPECT_DOUBLE_EQ(env.product({ "a", "c" }), 10.0);
    EXPECT_DOUBLE_EQ(env.product({}), 1.0);
}

TEST(DimEnv, WithOverrides)
{
    DimEnv base{ { "p", 1024 }, { "d", 768 } };
    DimEnv tile{ { "p", 128 } };
    const DimEnv merged = base.withOverrides(tile);
    EXPECT_EQ(merged.extent("p"), 128);
    EXPECT_EQ(merged.extent("d"), 768);
    EXPECT_EQ(base.extent("p"), 1024); // original untouched
}

TEST(TensorRef, ElementCountAndPrinting)
{
    DimEnv env{ { "h", 12 }, { "e", 64 }, { "p", 128 } };
    TensorRef q{ "Q", { "h", "e", "p" } };
    EXPECT_DOUBLE_EQ(q.elementCount(env), 12.0 * 64 * 128);
    EXPECT_EQ(q.toString(), "Q[h,e,p]");
}

TEST(Einsum, ReductionIndicesAreInputsMinusOutputs)
{
    // Z[m,n] = sum_k A[m,k] * B[k,n] (Eq. 5).
    Einsum z("Z", { "m", "n" });
    z.input("A", { "m", "k" }).input("B", { "k", "n" })
        .combine(CombineOp::Mul).reduce(ReduceOp::Sum);
    EXPECT_EQ(z.reductionIndices(),
              (std::vector<std::string>{ "k" }));
}

TEST(Einsum, ComputeLoadMatchesEq40)
{
    // Eq. 40: load = prod(output dims) * prod(reduction dims).
    DimEnv env{ { "m", 32 }, { "n", 16 }, { "k", 8 } };
    Einsum z("Z", { "m", "n" });
    z.input("A", { "m", "k" }).input("B", { "k", "n" })
        .combine(CombineOp::Mul).reduce(ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(z.computeLoad(env), 32.0 * 16 * 8);
}

TEST(Einsum, ComputeLoadPureMap)
{
    DimEnv env{ { "p", 100 } };
    Einsum e("E", { "p" });
    e.input("I", { "p" }).unary(UnaryOp::Exp);
    EXPECT_DOUBLE_EQ(e.computeLoad(env), 100.0);
    EXPECT_TRUE(e.reductionIndices().empty());
}

TEST(Einsum, PeClassContractionIsMatrix)
{
    Einsum z("Z", { "m", "n" });
    z.input("A", { "m", "k" }).input("B", { "k", "n" })
        .combine(CombineOp::Mul).reduce(ReduceOp::Sum);
    EXPECT_EQ(z.peClass(), PeClass::Matrix);
}

TEST(Einsum, PeClassElementwiseMulIsVector)
{
    // No reduction index: a Hadamard product is streaming work.
    Einsum z("Z", { "m" });
    z.input("A", { "m" }).input("B", { "m" })
        .combine(CombineOp::Mul);
    EXPECT_EQ(z.peClass(), PeClass::Vector);
}

TEST(Einsum, PeClassReductionWithoutMulIsVector)
{
    Einsum z("Z", { "m" });
    z.input("A", { "m", "k" }).reduce(ReduceOp::Max);
    EXPECT_EQ(z.peClass(), PeClass::Vector);
}

TEST(Einsum, ForcePeClassWins)
{
    Einsum z("Z", { "m" });
    z.input("A", { "m" }).forcePeClass(PeClass::Matrix);
    EXPECT_EQ(z.peClass(), PeClass::Matrix);
}

TEST(Einsum, AtMostTwoInputs)
{
    Einsum z("Z", { "m" });
    z.input("A", { "m" }).input("B", { "m" });
    EXPECT_THROW(z.input("C", { "m" }), PanicError);
}

TEST(Einsum, RecurrentFlag)
{
    Einsum rm("RM", { "h", "p" });
    rm.input("RM", { "h", "p" }).input("LM", { "h", "p" })
        .combine(CombineOp::Max).recurrentOver("m1");
    EXPECT_TRUE(rm.isRecurrent());
    EXPECT_EQ(rm.recurrentIndex(), "m1");
}

TEST(Einsum, ToStringMentionsPieces)
{
    Einsum z("Z", { "m", "n" });
    z.input("A", { "m", "k" }).input("B", { "k", "n" })
        .combine(CombineOp::Mul).reduce(ReduceOp::Sum);
    const std::string s = z.toString();
    EXPECT_NE(s.find("Z[m,n]"), std::string::npos);
    EXPECT_NE(s.find("A[m,k]"), std::string::npos);
    EXPECT_NE(s.find("mul"), std::string::npos);
}

TEST(OpNames, AllEnumeratorsPrintable)
{
    EXPECT_EQ(toString(CombineOp::Div), "div");
    EXPECT_EQ(toString(UnaryOp::Rsqrt), "rsqrt");
    EXPECT_EQ(toString(ReduceOp::Max), "max");
    EXPECT_EQ(toString(PeClass::Matrix), "2d");
    EXPECT_EQ(toString(PeClass::Vector), "1d");
}

} // namespace
} // namespace transfusion::einsum
