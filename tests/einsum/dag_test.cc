/**
 * @file
 * Unit tests for the DAG utility: structure queries, topological
 * enumeration, weak connectivity and reachability.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "einsum/dag.hh"

namespace transfusion::einsum
{
namespace
{

/** Diamond: 0 -> {1,2} -> 3. */
Dag
diamond()
{
    Dag d(4);
    d.addEdge(0, 1);
    d.addEdge(0, 2);
    d.addEdge(1, 3);
    d.addEdge(2, 3);
    return d;
}

TEST(Dag, EdgesAndDegrees)
{
    const Dag d = diamond();
    EXPECT_EQ(d.nodeCount(), 4);
    EXPECT_EQ(d.edgeCount(), 4);
    EXPECT_TRUE(d.hasEdge(0, 1));
    EXPECT_FALSE(d.hasEdge(1, 0));
    EXPECT_EQ(d.successors(0), (std::vector<int>{ 1, 2 }));
    EXPECT_EQ(d.predecessors(3), (std::vector<int>{ 1, 2 }));
}

TEST(Dag, DuplicateEdgesIgnored)
{
    Dag d(2);
    d.addEdge(0, 1);
    d.addEdge(0, 1);
    EXPECT_EQ(d.edgeCount(), 1);
}

TEST(Dag, SelfEdgeRejected)
{
    Dag d(2);
    EXPECT_THROW(d.addEdge(1, 1), PanicError);
}

TEST(Dag, SourcesAndSinks)
{
    const Dag d = diamond();
    EXPECT_EQ(d.sources(), (std::vector<int>{ 0 }));
    EXPECT_EQ(d.sinks(), (std::vector<int>{ 3 }));
}

TEST(Dag, TopoSortRespectsEdges)
{
    const Dag d = diamond();
    const auto order = d.topoSort();
    ASSERT_EQ(order.size(), 4u);
    std::vector<int> position(4);
    for (int i = 0; i < 4; ++i)
        position[static_cast<std::size_t>(order[i])] = i;
    for (int v = 0; v < 4; ++v) {
        for (int w : d.successors(v))
            EXPECT_LT(position[v], position[w]);
    }
}

TEST(Dag, TopoSortDeterministicSmallestFirst)
{
    const Dag d = diamond();
    EXPECT_EQ(d.topoSort(), (std::vector<int>{ 0, 1, 2, 3 }));
}

TEST(Dag, AcyclicDetection)
{
    EXPECT_TRUE(diamond().isAcyclic());
    Dag cyc(3);
    cyc.addEdge(0, 1);
    cyc.addEdge(1, 2);
    cyc.addEdge(2, 0);
    EXPECT_FALSE(cyc.isAcyclic());
    EXPECT_THROW(cyc.topoSort(), PanicError);
}

TEST(Dag, WeakConnectivity)
{
    const Dag d = diamond();
    EXPECT_TRUE(d.isWeaklyConnected({ true, true, true, true }));
    EXPECT_TRUE(d.isWeaklyConnected({ true, true, false, false }));
    // {1} and {2} are not connected to each other without 0 or 3.
    EXPECT_FALSE(d.isWeaklyConnected({ false, true, true, false }));
    // Empty and singleton subsets count as connected.
    EXPECT_TRUE(d.isWeaklyConnected({ false, false, false, false }));
    EXPECT_TRUE(d.isWeaklyConnected({ false, true, false, false }));
}

TEST(Dag, DependencyCompleteness)
{
    const Dag d = diamond();
    EXPECT_TRUE(d.isDependencyComplete({ true, true, true, false }));
    // Node 3 without node 2 misses a dependency.
    EXPECT_FALSE(d.isDependencyComplete({ true, true, false, true }));
    EXPECT_TRUE(d.isDependencyComplete({ true, false, false,
                                         false }));
}

TEST(Dag, ReachabilityFromSources)
{
    const Dag d = diamond();
    EXPECT_TRUE(d.allReachableFromSources({ true, true, false,
                                            false }));
    // {1} alone: source 0 excluded, so 1 is unreachable inside.
    EXPECT_FALSE(d.allReachableFromSources({ false, true, false,
                                             false }));
}

TEST(Dag, CountTopoOrdersDiamond)
{
    // Diamond has exactly two linear extensions.
    EXPECT_EQ(diamond().countTopoOrders(100), 2u);
}

TEST(Dag, CountTopoOrdersCapped)
{
    Dag d(6); // 6 isolated nodes: 720 orders, capped at 10.
    EXPECT_EQ(d.countTopoOrders(10), 10u);
}

TEST(Dag, EnumerateTopoOrdersAllValid)
{
    const Dag d = diamond();
    const auto orders = d.enumerateTopoOrders(100);
    EXPECT_EQ(orders.size(), 2u);
    for (const auto &order : orders) {
        std::vector<int> position(4);
        for (int i = 0; i < 4; ++i)
            position[static_cast<std::size_t>(order[i])] = i;
        for (int v = 0; v < 4; ++v) {
            for (int w : d.successors(v))
                EXPECT_LT(position[v], position[w]);
        }
    }
}

TEST(Dag, EnumerationIsDeterministic)
{
    const auto a = diamond().enumerateTopoOrders(100);
    const auto b = diamond().enumerateTopoOrders(100);
    EXPECT_EQ(a, b);
}

TEST(Dag, ChainHasSingleOrder)
{
    Dag d(5);
    for (int i = 0; i + 1 < 5; ++i)
        d.addEdge(i, i + 1);
    EXPECT_EQ(d.countTopoOrders(100), 1u);
    EXPECT_EQ(d.enumerateTopoOrders(100).front(),
              (std::vector<int>{ 0, 1, 2, 3, 4 }));
}

TEST(Dag, ToDotContainsEdges)
{
    const std::string dot = diamond().toDot({ "a", "b", "c", "d" });
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
    EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
}

} // namespace
} // namespace transfusion::einsum
