/**
 * @file
 * Unit tests for the Cascade container: producer lookup, external
 * inputs/outputs, DAG construction including loop-carried recurrent
 * reads.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "einsum/cascade.hh"

namespace transfusion::einsum
{
namespace
{

/** Y = A*B; Z = exp(Y). */
Cascade
twoStep()
{
    Cascade c("two");
    c.add(Einsum("Y", { "m", "n" })
              .input("A", { "m", "k" })
              .input("B", { "k", "n" })
              .combine(CombineOp::Mul)
              .reduce(ReduceOp::Sum));
    c.add(Einsum("Z", { "m", "n" })
              .input("Y", { "m", "n" })
              .unary(UnaryOp::Exp));
    return c;
}

TEST(Cascade, ProducerLookup)
{
    const Cascade c = twoStep();
    EXPECT_EQ(c.producerOf("Y"), 0);
    EXPECT_EQ(c.producerOf("Z"), 1);
    EXPECT_EQ(c.producerOf("A"), -1);
}

TEST(Cascade, DuplicateOutputRejected)
{
    Cascade c("dup");
    c.add(Einsum("Y", { "m" }).input("A", { "m" }));
    EXPECT_THROW(
        c.add(Einsum("Y", { "m" }).input("B", { "m" })),
        FatalError);
}

TEST(Cascade, ExternalInputsInFirstUseOrder)
{
    const Cascade c = twoStep();
    EXPECT_EQ(c.externalInputs(),
              (std::vector<std::string>{ "A", "B" }));
}

TEST(Cascade, ExternalOutputs)
{
    const Cascade c = twoStep();
    EXPECT_EQ(c.externalOutputs(),
              (std::vector<std::string>{ "Z" }));
}

TEST(Cascade, DagEdgesFollowTensors)
{
    const Cascade c = twoStep();
    const Dag d = c.buildDag();
    EXPECT_EQ(d.nodeCount(), 2);
    EXPECT_TRUE(d.hasEdge(0, 1));
}

TEST(Cascade, RecurrentSelfReadIsNotAnEdge)
{
    Cascade c("state");
    c.add(Einsum("RM", { "p" })
              .input("RM", { "p" })
              .input("LM", { "p" })
              .combine(CombineOp::Max)
              .recurrentOver("m1"));
    const Dag d = c.buildDag();
    EXPECT_EQ(d.edgeCount(), 0);
    // The self-read is state, not an external input.
    EXPECT_EQ(c.externalInputs(),
              (std::vector<std::string>{ "LM" }));
}

TEST(Cascade, LoopCarriedReadOfLaterRecurrentOpAllowed)
{
    // SPD (op 0) reads RD, defined later (op 1) as recurrent state:
    // the read refers to the previous loop iteration, so there must
    // be no 1 -> 0 edge and no cycle.
    Cascade c("carried");
    c.add(Einsum("SPD", { "p" })
              .input("RD", { "p" })
              .input("PRM", { "p" })
              .combine(CombineOp::Mul));
    c.add(Einsum("RD", { "p" })
              .input("SLD", { "p" })
              .input("SPD", { "p" })
              .combine(CombineOp::Add)
              .recurrentOver("m1"));
    const Dag d = c.buildDag();
    EXPECT_TRUE(d.hasEdge(0, 1));  // RD consumes SPD this iteration
    EXPECT_FALSE(d.hasEdge(1, 0)); // SPD's RD read is loop-carried
    EXPECT_TRUE(d.isAcyclic());
}

TEST(Cascade, PreviousReadsCreateNoEdges)
{
    // PRM-style op: previous and current reads of the same state.
    Cascade c("prev");
    c.add(Einsum("RM", { "p" })
              .inputPrevious("RM", { "p" })
              .input("LM", { "p" })
              .combine(CombineOp::Max)
              .recurrentOver("m1"));
    c.add(Einsum("PRM", { "p" })
              .inputPrevious("RM", { "p" })
              .input("RM", { "p" })
              .combine(CombineOp::Sub)
              .unary(UnaryOp::Exp));
    const Dag d = c.buildDag();
    // Only the current-read edge RM -> PRM exists.
    EXPECT_TRUE(d.hasEdge(0, 1));
    EXPECT_EQ(d.edgeCount(), 1);
    // The marked reads are loop-carried state, not external.
    EXPECT_EQ(c.externalInputs(),
              (std::vector<std::string>{ "LM" }));
}

TEST(Cascade, UseBeforeNonRecurrentDefIsFatal)
{
    Cascade c("bad");
    c.add(Einsum("X", { "p" }).input("Y", { "p" }));
    c.add(Einsum("Y", { "p" }).input("I", { "p" }));
    EXPECT_THROW(c.buildDag(), FatalError);
}

TEST(Cascade, TotalComputeLoadSums)
{
    const Cascade c = twoStep();
    DimEnv env{ { "m", 4 }, { "n", 8 }, { "k", 2 } };
    // Y: 4*8*2 = 64; Z: 4*8 = 32.
    EXPECT_DOUBLE_EQ(c.totalComputeLoad(env), 96.0);
}

TEST(Cascade, OpNamesAlignWithDagNodes)
{
    const Cascade c = twoStep();
    EXPECT_EQ(c.opNames(),
              (std::vector<std::string>{ "Y", "Z" }));
}

TEST(Cascade, ToStringListsOps)
{
    const std::string s = twoStep().toString();
    EXPECT_NE(s.find("cascade two (2 ops)"), std::string::npos);
    EXPECT_NE(s.find("Y[m,n]"), std::string::npos);
}

} // namespace
} // namespace transfusion::einsum
