/**
 * @file
 * Golden regression test for the capacity planner: the RunReport
 * of one small edge/T5-small search pins the per-candidate
 * prefixed fleet attribution ("plan/candidate.<i>."), the
 * enumeration order, the prune/simulate split, and the search
 * aggregates (frontier size, best cost) in one reviewable file.
 *
 * Regenerate with scripts/update_golden.sh (or run this binary
 * with TRANSFUSION_UPDATE_GOLDEN=1) after an intentional change to
 * the planner, the fleet event loop, the serve simulator, or the
 * cluster presets.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/obs.hh"
#include "obs/report.hh"
#include "plan/planner.hh"

namespace transfusion
{
namespace
{

std::string
goldenPath(const std::string &name)
{
    return std::string(TRANSFUSION_GOLDEN_DIR) + "/" + name
        + ".txt";
}

bool
updateRequested()
{
    const char *env = std::getenv("TRANSFUSION_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) == "1";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Small edge search: heavy enough that the analytic bound prunes
 *  part of the space, light enough to finish in well under a
 *  second — both branches land in the pinned report. */
std::string
planReport()
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s = 400.0;
    wl.requests = 48;
    wl.prompt = { 128, 256 };
    wl.output = { 64, 128 };

    plan::SloSpec slo;
    slo.p99_latency_s = 2.0;

    plan::PlannerOptions opts;
    opts.serve.max_batch = 4;
    opts.serve.cost.cache_samples = 3;
    opts.serve.cost.prefill_samples = 3;
    opts.serve.cost.evaluator.mcts.iterations = 32;
    opts.threads = 1;

    plan::SearchSpace space;
    space.clusters = { "edge" };
    space.chip_counts = { 1, 2 };
    space.replica_counts = { 1, 2 };
    space.policies = { fleet::PolicyKind::RoundRobin };

    obs::Registry local;
    {
        obs::ScopedRegistry scope(local);
        const plan::CapacityPlanner planner(model::t5Small(), wl,
                                            slo, opts);
        (void)planner.plan(space, 7);
    }
    return obs::RunReport::capture(local).toString();
}

TEST(GoldenPlan, EdgeT5SmallCapacitySearch)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled "
                        "(TRANSFUSION_OBS=OFF): no report to pin";

    const std::string actual = planReport();
    ASSERT_FALSE(actual.empty())
        << "instrumentation produced no metrics";
    // The planner must actually have reported: the search
    // aggregates and the per-candidate prefixed attribution.
    EXPECT_NE(actual.find("plan/enumerated"), std::string::npos);
    EXPECT_NE(actual.find("plan/candidate.0."), std::string::npos);
    EXPECT_NE(actual.find("plan/frontier_size"),
              std::string::npos);

    const std::string path = goldenPath("edge_t5small_plan");
    if (updateRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        std::cout << "updated golden " << path << "\n";
        return;
    }

    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path
        << "; run scripts/update_golden.sh to create it";
    EXPECT_EQ(expected, actual)
        << "report drifted from " << path << ":\n"
        << obs::RunReport::diff(expected, actual)
        << "If the change is intentional, regenerate with "
           "scripts/update_golden.sh and review the diff.";
}

TEST(GoldenPlan, PlanReportIsReproducibleWithinProcess)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled";
    EXPECT_EQ(planReport(), planReport());
}

} // namespace
} // namespace transfusion
