/**
 * @file
 * Golden regression test for the multi-chip subsystem: the
 * RunReport of a sharded llama3-8B evaluation (TP = 2, PP = 2 on
 * the 4-chip cloud cluster) pins the collective byte/energy
 * formulas, the link model constants, the pipeline partition, and
 * the sharded per-chip evaluation in one reviewable file.
 *
 * Regenerate with scripts/update_golden.sh (or run this binary
 * with TRANSFUSION_UPDATE_GOLDEN=1) after an intentional change to
 * the cost model or the cluster presets.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "model/stack.hh"
#include "multichip/sharded_evaluator.hh"
#include "obs/obs.hh"
#include "obs/report.hh"

namespace transfusion
{
namespace
{

constexpr std::int64_t kSeq = 4096;
constexpr int kMctsIterations = 128;

std::string
goldenPath(const std::string &name)
{
    return std::string(TRANSFUSION_GOLDEN_DIR) + "/" + name
        + ".txt";
}

bool
updateRequested()
{
    const char *env = std::getenv("TRANSFUSION_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) == "1";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Sharded llama3-8B evaluation with every metric captured. */
std::string
shardedReport()
{
    schedule::EvaluatorOptions options;
    options.mcts.iterations = kMctsIterations;
    obs::Registry local;
    {
        obs::ScopedRegistry scope(local);
        const multichip::ShardedStackEvaluator eval(
            multichip::cloudCluster(4),
            model::decoderOnly(model::llama3_8b()), kSeq, kSeq,
            { /*tp=*/2, /*pp=*/2 }, options);
        (void)eval.evaluate(schedule::StrategyKind::TransFusion);
    }
    return obs::RunReport::capture(local).toString();
}

TEST(GoldenMultichip, CloudLlama3Tp2Pp2TransFusion)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled "
                        "(TRANSFUSION_OBS=OFF): no report to pin";

    const std::string actual = shardedReport();
    ASSERT_FALSE(actual.empty())
        << "instrumentation produced no metrics";
    // The multi-chip layer must actually have reported: collective
    // counters and the sharded-evaluation gauges.
    EXPECT_NE(actual.find("multichip"), std::string::npos);

    const std::string path = goldenPath("cloud_llama3_tp2pp2");
    if (updateRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        std::cout << "updated golden " << path << "\n";
        return;
    }

    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path
        << "; run scripts/update_golden.sh to create it";
    EXPECT_EQ(expected, actual)
        << "report drifted from " << path << ":\n"
        << obs::RunReport::diff(expected, actual)
        << "If the change is intentional, regenerate with "
           "scripts/update_golden.sh and review the diff.";
}

TEST(GoldenMultichip, ShardedReportIsReproducibleWithinProcess)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled";
    EXPECT_EQ(shardedReport(), shardedReport());
}

} // namespace
} // namespace transfusion
