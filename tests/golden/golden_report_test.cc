/**
 * @file
 * Golden regression tests: the observability RunReport of an
 * Evaluator run pins every cost-model constant at once.  Latency,
 * traffic and energy attribution land in the report with 12
 * significant digits, so corrupting any modelling constant (DRAM
 * bandwidth, energy-per-access, reread factors, ...) changes at
 * least one line and fails the comparison with a readable diff.
 *
 * Regenerate with scripts/update_golden.sh (or by running this
 * binary with TRANSFUSION_UPDATE_GOLDEN=1) after an intentional
 * cost-model change, and review the golden diff like code.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "arch/arch.hh"
#include "model/transformer.hh"
#include "obs/obs.hh"
#include "obs/report.hh"
#include "schedule/evaluator.hh"

namespace transfusion
{
namespace
{

/** Sequence kept small so the golden tier stays fast. */
constexpr std::int64_t kSeq = 4096;

/** Reduced MCTS budget: deterministic (fixed seed) and quick. */
constexpr int kMctsIterations = 128;

std::string
goldenPath(const std::string &name)
{
    return std::string(TRANSFUSION_GOLDEN_DIR) + "/" + name
        + ".txt";
}

bool
updateRequested()
{
    const char *env = std::getenv("TRANSFUSION_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) == "1";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/**
 * Evaluate `strategy` on llama3-8B at `arch` with every metric
 * captured in a scoped local registry, and render the report.
 */
std::string
evaluateReport(const arch::ArchConfig &arch,
               schedule::StrategyKind strategy)
{
    schedule::EvaluatorOptions options;
    options.mcts.iterations = kMctsIterations;
    obs::Registry local;
    {
        obs::ScopedRegistry scope(local);
        const schedule::Evaluator eval(arch, model::llama3_8b(),
                                       kSeq, options);
        (void)eval.evaluate(strategy);
    }
    return obs::RunReport::capture(local).toString();
}

void
compareAgainstGolden(const std::string &name,
                     const arch::ArchConfig &arch,
                     schedule::StrategyKind strategy)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled "
                        "(TRANSFUSION_OBS=OFF): no report to pin";

    const std::string actual = evaluateReport(arch, strategy);
    ASSERT_FALSE(actual.empty())
        << "instrumentation produced no metrics";

    const std::string path = goldenPath(name);
    if (updateRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        std::cout << "updated golden " << path << "\n";
        return;
    }

    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path
        << "; run scripts/update_golden.sh to create it";
    EXPECT_EQ(expected, actual)
        << "report drifted from " << path << ":\n"
        << obs::RunReport::diff(expected, actual)
        << "If the cost-model change is intentional, regenerate "
           "with scripts/update_golden.sh and review the diff.";
}

TEST(GoldenReport, CloudUnfused)
{
    compareAgainstGolden("cloud_llama3_unfused", arch::cloudArch(),
                         schedule::StrategyKind::Unfused);
}

TEST(GoldenReport, CloudTransFusion)
{
    compareAgainstGolden("cloud_llama3_transfusion",
                         arch::cloudArch(),
                         schedule::StrategyKind::TransFusion);
}

TEST(GoldenReport, EdgeUnfused)
{
    compareAgainstGolden("edge_llama3_unfused", arch::edgeArch(),
                         schedule::StrategyKind::Unfused);
}

TEST(GoldenReport, EdgeTransFusion)
{
    compareAgainstGolden("edge_llama3_transfusion",
                         arch::edgeArch(),
                         schedule::StrategyKind::TransFusion);
}

TEST(GoldenReport, ReportIsReproducibleWithinProcess)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled";
    // The golden contract only works if back-to-back runs agree
    // bit-for-bit; wall-clock timers must not leak in.
    EXPECT_EQ(evaluateReport(arch::edgeArch(),
                             schedule::StrategyKind::TransFusion),
              evaluateReport(arch::edgeArch(),
                             schedule::StrategyKind::TransFusion));
}

} // namespace
} // namespace transfusion
