/**
 * @file
 * Golden regression test for the fault-tolerance layer: the
 * RunReport of a degraded llama3-8B serving run (TP = 2, PP = 2 on
 * the 4-chip cloud cluster, one chip lost mid-trace) pins the
 * drain/retry accounting, the replanned degraded window, the
 * per-window attribution metrics, and the fault counters in one
 * reviewable file.
 *
 * Regenerate with scripts/update_golden.sh (or run this binary
 * with TRANSFUSION_UPDATE_GOLDEN=1) after an intentional change to
 * the fault model, the serve simulator, or the cluster presets.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_server.hh"
#include "obs/obs.hh"
#include "obs/report.hh"
#include "serve/workload.hh"

namespace transfusion
{
namespace
{

std::string
goldenPath(const std::string &name)
{
    return std::string(TRANSFUSION_GOLDEN_DIR) + "/" + name
        + ".txt";
}

bool
updateRequested()
{
    const char *env = std::getenv("TRANSFUSION_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) == "1";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Degraded llama3-8B serving run with every metric captured. */
std::string
degradedReport()
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s = 4.0;
    wl.requests = 24;
    wl.prompt = { 256, 1024 };
    wl.output = { 32, 64 };

    fault::FaultServeOptions opts;
    opts.serve.strategy = schedule::StrategyKind::TransFusion;
    opts.serve.max_batch = 8;
    opts.serve.cost.evaluator.mcts.iterations = 128;
    opts.initial_spec = { /*tp=*/2, /*pp=*/2 };
    opts.plan_threads = 1;

    // One chip lost while arrivals are still streaming in: the
    // replan onto three survivors and the drained retries are all
    // part of the pinned report.
    fault::FaultSchedule faults;
    faults.events.push_back(
        { 1.0, fault::FaultKind::ChipLoss, 1 });

    obs::Registry local;
    {
        obs::ScopedRegistry scope(local);
        const fault::FaultTolerantServer server(
            multichip::cloudCluster(4), model::llama3_8b(), wl,
            opts);
        (void)server.run(serve::generateWorkload(wl, 13), faults);
    }
    return obs::RunReport::capture(local).toString();
}

TEST(GoldenFault, CloudLlama3OneChipLossDegradedServe)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled "
                        "(TRANSFUSION_OBS=OFF): no report to pin";

    const std::string actual = degradedReport();
    ASSERT_FALSE(actual.empty())
        << "instrumentation produced no metrics";
    // The fault layer must actually have reported: event counters
    // and the per-window attribution gauges.
    EXPECT_NE(actual.find("fault"), std::string::npos);

    const std::string path =
        goldenPath("cloud_llama3_fault_chiploss");
    if (updateRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        std::cout << "updated golden " << path << "\n";
        return;
    }

    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path
        << "; run scripts/update_golden.sh to create it";
    EXPECT_EQ(expected, actual)
        << "report drifted from " << path << ":\n"
        << obs::RunReport::diff(expected, actual)
        << "If the change is intentional, regenerate with "
           "scripts/update_golden.sh and review the diff.";
}

TEST(GoldenFault, DegradedReportIsReproducibleWithinProcess)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled";
    EXPECT_EQ(degradedReport(), degradedReport());
}

} // namespace
} // namespace transfusion
