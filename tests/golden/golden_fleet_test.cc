/**
 * @file
 * Golden regression test for the fleet layer: the RunReport of a
 * 4-replica llama3-8B fleet (2-chip cloud replicas, power-of-two
 * routing, one replica lost and recovered mid-trace) pins the
 * per-replica prefixed serve attribution, the routing/failover
 * counters, and the cross-replica merge order in one reviewable
 * file.
 *
 * Regenerate with scripts/update_golden.sh (or run this binary
 * with TRANSFUSION_UPDATE_GOLDEN=1) after an intentional change to
 * the fleet event loop, the router, the serve simulator, or the
 * cluster presets.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fleet/fleet_sim.hh"
#include "obs/obs.hh"
#include "obs/report.hh"
#include "serve/workload.hh"

namespace transfusion
{
namespace
{

std::string
goldenPath(const std::string &name)
{
    return std::string(TRANSFUSION_GOLDEN_DIR) + "/" + name
        + ".txt";
}

bool
updateRequested()
{
    const char *env = std::getenv("TRANSFUSION_UPDATE_GOLDEN");
    return env != nullptr && std::string(env) == "1";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** 4-replica power-of-two fleet with a mid-trace replica outage. */
std::string
fleetReport()
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s = 16.0;
    wl.requests = 24;
    wl.prompt = { 256, 1024 };
    wl.output = { 32, 64 };

    fleet::FleetOptions opts;
    opts.serve.strategy = schedule::StrategyKind::TransFusion;
    opts.serve.max_batch = 8;
    opts.serve.cost.evaluator.mcts.iterations = 128;
    opts.threads = 1;
    opts.plan_threads = 1;

    // Replica 1 loses a chip while arrivals are still streaming in
    // and recovers later: the drain, the backoff re-offers, and the
    // down/up transitions are all part of the pinned report.
    fault::FaultSchedule outage;
    outage.events.push_back(
        { 1.0, fault::FaultKind::ChipLoss, 0 });
    outage.events.push_back(
        { 4.0, fault::FaultKind::ChipRecovery, 0 });

    fleet::FleetRunOptions run;
    run.policy = fleet::PolicyKind::PowerOfTwo;
    run.seed = 13;
    run.faults.resize(2);
    run.faults[1] = outage;

    obs::Registry local;
    {
        obs::ScopedRegistry scope(local);
        const auto fleet = fleet::FleetSimulator::uniform(
            4, multichip::cloudCluster(2), model::llama3_8b(), wl,
            opts);
        (void)fleet.run(serve::generateWorkload(wl, 13), run);
    }
    return obs::RunReport::capture(local).toString();
}

TEST(GoldenFleet, CloudLlama3FourReplicaP2cWithOutage)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled "
                        "(TRANSFUSION_OBS=OFF): no report to pin";

    const std::string actual = fleetReport();
    ASSERT_FALSE(actual.empty())
        << "instrumentation produced no metrics";
    // The fleet layer must actually have reported: the top-level
    // counters and the per-replica prefixed serve attribution.
    EXPECT_NE(actual.find("fleet/routed"), std::string::npos);
    EXPECT_NE(actual.find("fleet/replica.0."), std::string::npos);
    EXPECT_NE(actual.find("fleet/replica.3."), std::string::npos);

    const std::string path = goldenPath("cloud_llama3_fleet4_p2c");
    if (updateRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        std::cout << "updated golden " << path << "\n";
        return;
    }

    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path
        << "; run scripts/update_golden.sh to create it";
    EXPECT_EQ(expected, actual)
        << "report drifted from " << path << ":\n"
        << obs::RunReport::diff(expected, actual)
        << "If the change is intentional, regenerate with "
           "scripts/update_golden.sh and review the diff.";
}

/**
 * Gray-failure scenario: replica 0's chips run 6x slow mid-trace
 * (no chip ever goes down), the health monitor's depth EWMA trips
 * the circuit breaker, and the breaker re-closes after the
 * recovery.  Pins the slowdown transition count, the breaker
 * open/close counters with per-replica attribution, and the
 * degraded-window serve metrics.
 */
std::string
slowdownBreakerReport()
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s = 8.0;
    wl.requests = 24;
    wl.prompt = { 256, 1024 };
    wl.output = { 32, 64 };

    fleet::FleetOptions opts;
    opts.serve.strategy = schedule::StrategyKind::TransFusion;
    opts.serve.max_batch = 8;
    opts.serve.cost.evaluator.mcts.iterations = 128;
    opts.threads = 1;
    opts.plan_threads = 1;
    opts.health.enabled = true;
    opts.health.alpha = 0.5;
    opts.health.depth_breach = 6.0;
    opts.health.breach_streak = 2;
    opts.health.cooldown_updates = 2;
    opts.health.probe_updates = 1;

    // Both of replica 0's chips throttle to 6x mid-trace and
    // recover later: a pure gray failure, nothing goes down.
    fault::FaultSchedule slowdown;
    slowdown.events.push_back(
        { 1.0, fault::FaultKind::ChipSlowdown, 0, 6.0 });
    slowdown.events.push_back(
        { 1.0, fault::FaultKind::ChipSlowdown, 1, 6.0 });
    slowdown.events.push_back(
        { 4.0, fault::FaultKind::SlowdownRecovery, 0 });
    slowdown.events.push_back(
        { 4.0, fault::FaultKind::SlowdownRecovery, 1 });

    fleet::FleetRunOptions run;
    run.policy = fleet::PolicyKind::PowerOfTwo;
    run.seed = 13;
    run.faults.resize(1);
    run.faults[0] = slowdown;

    obs::Registry local;
    {
        obs::ScopedRegistry scope(local);
        const auto fleet = fleet::FleetSimulator::uniform(
            2, multichip::cloudCluster(2), model::llama3_8b(), wl,
            opts);
        (void)fleet.run(serve::generateWorkload(wl, 13), run);
    }
    return obs::RunReport::capture(local).toString();
}

TEST(GoldenFleet, CloudLlama3SlowdownBreaker)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled "
                        "(TRANSFUSION_OBS=OFF): no report to pin";

    const std::string actual = slowdownBreakerReport();
    ASSERT_FALSE(actual.empty())
        << "instrumentation produced no metrics";
    // The gray-failure path must actually have fired: slowdown
    // transitions applied and the breaker tripped at least once.
    EXPECT_NE(actual.find("fleet/slowdown.transitions"),
              std::string::npos);
    EXPECT_NE(actual.find("fleet/breaker.opens"),
              std::string::npos);

    const std::string path =
        goldenPath("cloud_llama3_slowdown_breaker");
    if (updateRequested()) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write golden " << path;
        out << actual;
        std::cout << "updated golden " << path << "\n";
        return;
    }

    const std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << "missing golden file " << path
        << "; run scripts/update_golden.sh to create it";
    EXPECT_EQ(expected, actual)
        << "report drifted from " << path << ":\n"
        << obs::RunReport::diff(expected, actual)
        << "If the change is intentional, regenerate with "
           "scripts/update_golden.sh and review the diff.";
}

TEST(GoldenFleet, FleetReportIsReproducibleWithinProcess)
{
    if (!TRANSFUSION_OBS_ENABLED)
        GTEST_SKIP() << "observability disabled";
    EXPECT_EQ(fleetReport(), fleetReport());
}

} // namespace
} // namespace transfusion
