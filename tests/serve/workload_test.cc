/**
 * @file
 * Unit tests for the Poisson request-trace generator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "serve/workload.hh"

namespace transfusion::serve
{
namespace
{

WorkloadOptions
smallOptions()
{
    WorkloadOptions wl;
    wl.arrival_per_s = 4.0;
    wl.requests = 200;
    wl.prompt = { 128, 2048 };
    wl.output = { 16, 256 };
    return wl;
}

TEST(ServeWorkload, DeterministicPerSeed)
{
    const auto wl = smallOptions();
    const auto a = generateWorkload(wl, 7);
    const auto b = generateWorkload(wl, 7);
    const auto c = generateWorkload(wl, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_EQ(a[i].output_len, b[i].output_len);
    }
    // A different seed must actually change the trace.
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].arrival_s != c[i].arrival_s;
    EXPECT_TRUE(any_diff);
}

TEST(ServeWorkload, ArrivalsSortedLengthsInRange)
{
    const auto wl = smallOptions();
    const auto trace = generateWorkload(wl, 3);
    ASSERT_EQ(trace.size(),
              static_cast<std::size_t>(wl.requests));
    double prev = 0;
    for (const auto &r : trace) {
        EXPECT_GE(r.arrival_s, prev);
        prev = r.arrival_s;
        EXPECT_GE(r.prompt_len, wl.prompt.lo);
        EXPECT_LE(r.prompt_len, wl.prompt.hi);
        EXPECT_GE(r.output_len, wl.output.lo);
        EXPECT_LE(r.output_len, wl.output.hi);
        EXPECT_EQ(r.peakContext(), r.prompt_len + r.output_len);
    }
}

TEST(ServeWorkload, MeanArrivalRateIsRoughlyRequested)
{
    auto wl = smallOptions();
    wl.requests = 4000;
    const auto trace = generateWorkload(wl, 5);
    const double rate = static_cast<double>(wl.requests)
        / trace.back().arrival_s;
    EXPECT_NEAR(rate, wl.arrival_per_s, 0.15 * wl.arrival_per_s);
}

TEST(ServeWorkload, RateScalingRescalesGapsOnly)
{
    // The monotone-load sweeps rely on this: same seed, higher
    // rate => identical lengths, arrival times scaled down.
    auto slow = smallOptions();
    auto fast = smallOptions();
    fast.arrival_per_s = 4.0 * slow.arrival_per_s;
    const auto a = generateWorkload(slow, 9);
    const auto b = generateWorkload(fast, 9);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_EQ(a[i].output_len, b[i].output_len);
        EXPECT_NEAR(b[i].arrival_s, a[i].arrival_s / 4.0,
                    1e-9 * a[i].arrival_s);
    }
}

TEST(ServeWorkload, DegenerateRangeIsConstant)
{
    auto wl = smallOptions();
    wl.prompt = { 777, 777 };
    for (const auto &r : generateWorkload(wl, 1))
        EXPECT_EQ(r.prompt_len, 777);
}

TEST(ServeWorkload, RejectsBadOptions)
{
    auto wl = smallOptions();
    wl.arrival_per_s = 0;
    EXPECT_THROW(generateWorkload(wl, 1), FatalError);
    wl = smallOptions();
    wl.requests = 0;
    EXPECT_THROW(generateWorkload(wl, 1), FatalError);
    wl = smallOptions();
    wl.prompt = { 0, 10 };
    EXPECT_THROW(generateWorkload(wl, 1), FatalError);
    wl = smallOptions();
    wl.output = { 64, 32 };
    EXPECT_THROW(generateWorkload(wl, 1), FatalError);
}

} // namespace
} // namespace transfusion::serve
