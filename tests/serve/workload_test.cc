/**
 * @file
 * Unit tests for the Poisson request-trace generator.
 */

#include <iterator>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "serve/workload.hh"

namespace transfusion::serve
{
namespace
{

WorkloadOptions
smallOptions()
{
    WorkloadOptions wl;
    wl.arrival_per_s = 4.0;
    wl.requests = 200;
    wl.prompt = { 128, 2048 };
    wl.output = { 16, 256 };
    return wl;
}

TEST(ServeWorkload, DeterministicPerSeed)
{
    const auto wl = smallOptions();
    const auto a = generateWorkload(wl, 7);
    const auto b = generateWorkload(wl, 7);
    const auto c = generateWorkload(wl, 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_EQ(a[i].output_len, b[i].output_len);
    }
    // A different seed must actually change the trace.
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].arrival_s != c[i].arrival_s;
    EXPECT_TRUE(any_diff);
}

TEST(ServeWorkload, ArrivalsSortedLengthsInRange)
{
    const auto wl = smallOptions();
    const auto trace = generateWorkload(wl, 3);
    ASSERT_EQ(trace.size(),
              static_cast<std::size_t>(wl.requests));
    double prev = 0;
    for (const auto &r : trace) {
        EXPECT_GE(r.arrival_s, prev);
        prev = r.arrival_s;
        EXPECT_GE(r.prompt_len, wl.prompt.lo);
        EXPECT_LE(r.prompt_len, wl.prompt.hi);
        EXPECT_GE(r.output_len, wl.output.lo);
        EXPECT_LE(r.output_len, wl.output.hi);
        EXPECT_EQ(r.peakContext(), r.prompt_len + r.output_len);
    }
}

TEST(ServeWorkload, MeanArrivalRateIsRoughlyRequested)
{
    auto wl = smallOptions();
    wl.requests = 4000;
    const auto trace = generateWorkload(wl, 5);
    const double rate = static_cast<double>(wl.requests)
        / trace.back().arrival_s;
    EXPECT_NEAR(rate, wl.arrival_per_s, 0.15 * wl.arrival_per_s);
}

TEST(ServeWorkload, RateScalingRescalesGapsOnly)
{
    // The monotone-load sweeps rely on this: same seed, higher
    // rate => identical lengths, arrival times scaled down.
    auto slow = smallOptions();
    auto fast = smallOptions();
    fast.arrival_per_s = 4.0 * slow.arrival_per_s;
    const auto a = generateWorkload(slow, 9);
    const auto b = generateWorkload(fast, 9);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_EQ(a[i].output_len, b[i].output_len);
        EXPECT_NEAR(b[i].arrival_s, a[i].arrival_s / 4.0,
                    1e-9 * a[i].arrival_s);
    }
}

TEST(ServeWorkload, DegenerateRangeIsConstant)
{
    auto wl = smallOptions();
    wl.prompt = { 777, 777 };
    for (const auto &r : generateWorkload(wl, 1))
        EXPECT_EQ(r.prompt_len, 777);
}

TEST(ServeWorkload, GoldenTraceOfFirstThirtyTwoDraws)
{
    // Pinned draw stability: the fleet/fault golden reports and
    // every recorded trace assume a (options, seed) pair maps to
    // this exact request stream forever.  If an intentional Rng or
    // draw-order change lands, regenerate these rows and call the
    // break out loudly in the change description.
    WorkloadOptions wl;
    wl.arrival_per_s = 4.0;
    wl.requests = 32;
    wl.prompt = { 128, 2048 };
    wl.output = { 16, 256 };
    struct Row
    {
        std::int64_t id;
        double arrival_s;
        std::int64_t prompt_len;
        std::int64_t output_len;
    };
    static const Row kGolden[] = {
        { 0, 0.33827764956100359, 199, 34 },
        { 1, 0.44374896423979032, 142, 178 },
        { 2, 0.50535367005236265, 1178, 41 },
        { 3, 0.74625302533278215, 225, 62 },
        { 4, 0.92632924218560109, 541, 101 },
        { 5, 0.98319091297195338, 170, 63 },
        { 6, 1.0077120243248021, 864, 228 },
        { 7, 1.026676953936402, 675, 89 },
        { 8, 1.0459406343045701, 276, 125 },
        { 9, 1.4308013895009546, 1744, 109 },
        { 10, 1.820854145471793, 1316, 96 },
        { 11, 2.201848494467602, 749, 45 },
        { 12, 2.218123162421076, 267, 132 },
        { 13, 2.2422417927515639, 556, 24 },
        { 14, 2.3219711508925895, 1097, 102 },
        { 15, 2.4188987985149693, 161, 23 },
        { 16, 2.5946331175355479, 1882, 44 },
        { 17, 2.6468500569190172, 196, 38 },
        { 18, 2.6534559922398038, 1252, 106 },
        { 19, 2.8564189635416146, 1449, 17 },
        { 20, 2.931407440503059, 1858, 86 },
        { 21, 2.9428891723304162, 315, 90 },
        { 22, 4.0235090865387448, 301, 190 },
        { 23, 4.6690588225686422, 1539, 103 },
        { 24, 4.7138051284891818, 1297, 146 },
        { 25, 5.1381062761213627, 168, 151 },
        { 26, 5.2336592066204295, 507, 16 },
        { 27, 5.5612603235645759, 254, 42 },
        { 28, 5.8999942384900654, 225, 148 },
        { 29, 6.2237006753421662, 1352, 117 },
        { 30, 6.5776158740847599, 453, 25 },
        { 31, 6.7536218762675357, 877, 18 },
    };
    const auto trace = generateWorkload(wl, 42);
    ASSERT_EQ(trace.size(), std::size(kGolden));
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, kGolden[i].id);
        EXPECT_EQ(trace[i].arrival_s, kGolden[i].arrival_s)
            << "row " << i; // bitwise
        EXPECT_EQ(trace[i].prompt_len, kGolden[i].prompt_len)
            << "row " << i;
        EXPECT_EQ(trace[i].output_len, kGolden[i].output_len)
            << "row " << i;
    }
    // A longer trace from the same seed starts with these exact
    // rows — the generator draws strictly in request order.
    wl.requests = 64;
    const auto longer = generateWorkload(wl, 42);
    for (std::size_t i = 0; i < std::size(kGolden); ++i)
        EXPECT_EQ(longer[i].arrival_s, kGolden[i].arrival_s);
}

TEST(ServeWorkload, RejectsBadOptions)
{
    auto wl = smallOptions();
    wl.arrival_per_s = 0;
    EXPECT_THROW(generateWorkload(wl, 1), FatalError);
    wl = smallOptions();
    wl.requests = 0;
    EXPECT_THROW(generateWorkload(wl, 1), FatalError);
    wl = smallOptions();
    wl.prompt = { 0, 10 };
    EXPECT_THROW(generateWorkload(wl, 1), FatalError);
    wl = smallOptions();
    wl.output = { 64, 32 };
    EXPECT_THROW(generateWorkload(wl, 1), FatalError);
}

} // namespace
} // namespace transfusion::serve
