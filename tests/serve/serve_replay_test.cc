/**
 * @file
 * Integration tests of the full serve path: threaded scenario
 * replay is bit-identical for any thread count, and tail latency
 * responds monotonically to offered load.  These are the TSan'd
 * "Serve" tests scripts/check.sh runs.
 */

#include <gtest/gtest.h>

#include "obs/obs.hh"
#include "obs/report.hh"
#include "serve/simulator.hh"

namespace transfusion::serve
{
namespace
{

WorkloadOptions
baseWorkload()
{
    WorkloadOptions wl;
    wl.arrival_per_s = 1.0;
    wl.requests = 64;
    wl.prompt = { 128, 1024 };
    wl.output = { 8, 64 };
    return wl;
}

ServeSimulator
makeSim()
{
    ServeOptions o;
    o.strategy = schedule::StrategyKind::FuseMax;
    o.max_batch = 4;
    o.cost.cache_samples = 3;
    o.cost.prefill_samples = 3;
    o.cost.evaluator.mcts.iterations = 64;
    return ServeSimulator(arch::edgeArch(), model::t5Small(),
                          baseWorkload(), o);
}

/** Field-for-field bit equality of two replay results. */
void
expectIdentical(const ServeMetrics &a, const ServeMetrics &b)
{
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.generated_tokens, b.generated_tokens);
    EXPECT_EQ(a.prefill_rounds, b.prefill_rounds);
    EXPECT_EQ(a.decode_rounds, b.decode_rounds);
    EXPECT_EQ(a.peak_running, b.peak_running);
    EXPECT_EQ(a.peak_queue, b.peak_queue);
    EXPECT_EQ(a.peak_reserved_words, b.peak_reserved_words);
    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.tokens_per_second, b.tokens_per_second);
    ASSERT_EQ(a.latency_s.count(), b.latency_s.count());
    for (double p : { 0.0, 50.0, 95.0, 99.0, 100.0 }) {
        EXPECT_EQ(a.ttft_s.percentile(p), b.ttft_s.percentile(p));
        EXPECT_EQ(a.latency_s.percentile(p),
                  b.latency_s.percentile(p));
    }
    EXPECT_EQ(a.ttft_s.sum(), b.ttft_s.sum());
    EXPECT_EQ(a.queue_wait_s.sum(), b.queue_wait_s.sum());
}

TEST(ServeReplay, BitIdenticalAcrossThreadCounts)
{
    const auto sim = makeSim();
    std::vector<ServeScenario> scenarios;
    for (double rate : { 0.5, 4.0, 32.0 }) {
        for (std::uint64_t seed : { 1ULL, 99ULL }) {
            ServeScenario s;
            s.workload = baseWorkload();
            s.workload.arrival_per_s = rate;
            s.seed = seed;
            scenarios.push_back(s);
        }
    }
    const auto serial = runScenarios(sim, scenarios, 1);
    const auto parallel = runScenarios(sim, scenarios, 4);
    ASSERT_EQ(serial.size(), scenarios.size());
    ASSERT_EQ(parallel.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(ServeReplay, ThreadedReplayMatchesDirectRun)
{
    const auto sim = makeSim();
    std::vector<ServeScenario> scenarios(3);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        scenarios[i].workload = baseWorkload();
        scenarios[i].seed = 100 + i;
    }
    const auto fanned = runScenarios(sim, scenarios, 4);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto direct = sim.run(generateWorkload(
            scenarios[i].workload, scenarios[i].seed));
        expectIdentical(fanned[i], direct);
    }
}

TEST(ServeReplay, ObsReportBitIdenticalAcrossThreadCounts)
{
    // The determinism-merge rule end to end: runScenarios records
    // each replay into a task-local registry and merges in scenario
    // order, so the aggregated observability report is bit-for-bit
    // the same no matter how the pool interleaved the replays.
    const auto sim = makeSim();
    std::vector<ServeScenario> scenarios;
    for (double rate : { 0.5, 8.0, 64.0 }) {
        for (std::uint64_t seed : { 3ULL, 41ULL }) {
            ServeScenario s;
            s.workload = baseWorkload();
            s.workload.arrival_per_s = rate;
            s.seed = seed;
            scenarios.push_back(s);
        }
    }
    const auto report = [&](int threads) {
        obs::Registry local;
        {
            obs::ScopedRegistry scope(local);
            (void)runScenarios(sim, scenarios, threads);
        }
        return obs::RunReport::capture(local).toString();
    };
    const std::string serial = report(1);
    const std::string fanned = report(4);
    EXPECT_EQ(serial, fanned);
#if TRANSFUSION_OBS_ENABLED
    EXPECT_FALSE(serial.empty());
    EXPECT_NE(serial.find("counter/serve/replays = 6"),
              std::string::npos);
#else
    EXPECT_TRUE(serial.empty());
#endif
}

TEST(ServeReplay, TailLatencyMonotoneInOfferedLoad)
{
    const auto sim = makeSim();
    // Same seed: lengths are identical, arrival gaps scale with
    // the rate, so rising load only compresses arrivals.
    std::vector<ServeScenario> scenarios;
    for (double rate : { 0.02, 2.0, 200.0 }) {
        ServeScenario s;
        s.workload = baseWorkload();
        s.workload.arrival_per_s = rate;
        s.seed = 7;
        scenarios.push_back(s);
    }
    const auto r = runScenarios(sim, scenarios, 2);
    for (std::size_t i = 1; i < r.size(); ++i) {
        EXPECT_GE(r[i].latency_s.percentile(99),
                  r[i - 1].latency_s.percentile(99));
        EXPECT_GE(r[i].peak_queue, r[i - 1].peak_queue);
    }
    // Saturation is visible: the hottest load point queues hard.
    EXPECT_GT(r.back().queue_wait_s.percentile(99), 0.0);
    EXPECT_GT(r.back().peak_queue, 0);
}

} // namespace
} // namespace transfusion::serve
