/**
 * @file
 * Unit tests for the serving event loop: admission, queueing,
 * shedding, and metric bookkeeping.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "serve/simulator.hh"

namespace transfusion::serve
{
namespace
{

WorkloadOptions
calmWorkload()
{
    WorkloadOptions wl;
    wl.arrival_per_s = 0.01; // requests far apart
    wl.requests = 10;
    wl.prompt = { 256, 256 };
    wl.output = { 32, 32 };
    return wl;
}

ServeOptions
fastServe(schedule::StrategyKind kind =
              schedule::StrategyKind::FuseMax)
{
    ServeOptions o;
    o.strategy = kind;
    o.max_batch = 4;
    o.cost.cache_samples = 3;
    o.cost.prefill_samples = 3;
    o.cost.evaluator.mcts.iterations = 64;
    return o;
}

TEST(ServeSimulator, LowLoadServesEveryRequestAlone)
{
    const auto wl = calmWorkload();
    const ServeSimulator sim(arch::edgeArch(), model::t5Small(),
                             wl, fastServe());
    const auto trace = generateWorkload(wl, 1);
    const auto m = sim.run(trace);

    EXPECT_EQ(m.offered, wl.requests);
    EXPECT_EQ(m.completed, wl.requests);
    EXPECT_EQ(m.rejected, 0);
    // Every request generates its full output.
    EXPECT_EQ(m.generated_tokens, wl.requests * 32);
    // Arrivals are ~100 s apart vs sub-second service: no overlap.
    EXPECT_EQ(m.peak_running, 1);
    EXPECT_DOUBLE_EQ(m.queue_wait_s.max(), 0.0);
    // One KV reservation at a time.
    EXPECT_DOUBLE_EQ(m.peak_reserved_words,
                     kvWordsPerToken(model::t5Small())
                         * (256.0 + 32.0));
    // TTFT <= total latency, and both are per-completed-request.
    EXPECT_EQ(m.ttft_s.count(),
              static_cast<std::size_t>(m.completed));
    EXPECT_EQ(m.latency_s.count(),
              static_cast<std::size_t>(m.completed));
    EXPECT_LT(m.ttft_s.max(), m.latency_s.min() + 1e-12);
    EXPECT_GT(m.tokens_per_second, 0.0);
    EXPECT_GT(m.decode_rounds, 0);
}

TEST(ServeSimulator, TightKvBudgetSerializesAdmission)
{
    auto wl = calmWorkload();
    wl.arrival_per_s = 1e6; // everyone arrives at once
    wl.requests = 6;
    const auto arch = arch::edgeArch();
    const auto cfg = model::t5Small();

    auto opts = fastServe();
    // Budget: weights + 1.5 request reservations, so exactly one
    // request fits at a time.
    const double res_bytes = kvWordsPerToken(cfg) * (256.0 + 32.0)
        * arch.element_bytes;
    opts.dram_capacity_bytes =
        weightWords(cfg) * arch.element_bytes + 1.5 * res_bytes;

    const ServeSimulator sim(arch, cfg, wl, opts);
    const auto m = sim.run(generateWorkload(wl, 2));

    EXPECT_EQ(m.completed, 6);
    EXPECT_EQ(m.rejected, 0);
    EXPECT_EQ(m.peak_running, 1); // KV, not lanes, is binding
    EXPECT_GE(m.peak_queue, 4);
    EXPECT_GT(m.queue_wait_s.max(), 0.0); // visibly queued
}

TEST(ServeSimulator, ImpossibleRequestsAreShed)
{
    auto wl = calmWorkload();
    wl.prompt = { 4096, 4096 };
    const auto arch = arch::edgeArch();
    const auto cfg = model::t5Small();

    auto opts = fastServe();
    // Budget below a single reservation: nothing can ever run.
    opts.dram_capacity_bytes =
        weightWords(cfg) * arch.element_bytes
        + 0.5 * kvWordsPerToken(cfg) * 4128.0
            * arch.element_bytes;

    const ServeSimulator sim(arch, cfg, wl, opts);
    const auto m = sim.run(generateWorkload(wl, 3));
    EXPECT_EQ(m.completed, 0);
    EXPECT_EQ(m.rejected, wl.requests);
    EXPECT_EQ(m.generated_tokens, 0);

    // A fully shed ledger must still render: its empty latency
    // distributions once aborted on Histogram::percentile().
    const std::string s = m.summary();
    EXPECT_NE(s.find("completed=0"), std::string::npos);
    EXPECT_NE(s.find("ttft_p50=-"), std::string::npos);
    EXPECT_NE(s.find("lat_p99=-"), std::string::npos);

    // An empty trace is the zero-makespan corner: tok/s has no
    // denominator and must render as "-", not divide by zero.
    const auto empty = sim.run({});
    EXPECT_EQ(empty.offered, 0);
    EXPECT_DOUBLE_EQ(empty.makespan_s, 0.0);
    EXPECT_NE(empty.summary().find("tok/s=-"), std::string::npos);
}

TEST(ServeSimulator, BoundedQueueShedsBursts)
{
    auto wl = calmWorkload();
    wl.arrival_per_s = 1e6;
    wl.requests = 24;
    auto opts = fastServe();
    opts.max_batch = 1;
    opts.max_queue = 2;
    const ServeSimulator sim(arch::edgeArch(), model::t5Small(),
                             wl, opts);
    const auto m = sim.run(generateWorkload(wl, 4));
    EXPECT_GT(m.rejected, 0);
    EXPECT_EQ(m.completed + m.rejected, m.offered);
    EXPECT_LE(m.peak_queue, 2);
}

TEST(ServeSimulator, StrategyChangesCostsNotAdmission)
{
    const auto wl = calmWorkload();
    const auto trace = generateWorkload(wl, 5);
    const ServeSimulator slow(
        arch::edgeArch(), model::t5Small(), wl,
        fastServe(schedule::StrategyKind::Unfused));
    const ServeSimulator fast(
        arch::edgeArch(), model::t5Small(), wl,
        fastServe(schedule::StrategyKind::FuseMax));
    const auto a = slow.run(trace);
    const auto b = fast.run(trace);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.generated_tokens, b.generated_tokens);
    // Fusion strictly helps the uncontended prefill-heavy path.
    EXPECT_GT(a.ttft_s.percentile(50), b.ttft_s.percentile(50));
}

TEST(ServeSimulator, RejectsMalformedTraces)
{
    const auto wl = calmWorkload();
    const ServeSimulator sim(arch::edgeArch(), model::t5Small(),
                             wl, fastServe());
    auto trace = generateWorkload(wl, 6);
    std::swap(trace.front().arrival_s, trace.back().arrival_s);
    EXPECT_THROW(sim.run(trace), FatalError);

    trace = generateWorkload(wl, 6);
    trace[2].output_len = 0;
    EXPECT_THROW(sim.run(trace), FatalError);
}

} // namespace
} // namespace transfusion::serve
