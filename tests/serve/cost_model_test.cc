/**
 * @file
 * Unit tests for the calibrated serve cost tables.
 */

#include <gtest/gtest.h>

#include "serve/cost_model.hh"

namespace transfusion::serve
{
namespace
{

ServeCostOptions
fastCost()
{
    ServeCostOptions o;
    o.cache_samples = 3;
    o.prefill_samples = 3;
    o.evaluator.mcts.iterations = 64;
    return o;
}

TEST(ServeCostModel, MatchesDecodeEvaluatorAtCalibratedPoints)
{
    const auto arch = arch::edgeArch();
    const auto cfg = model::t5Small();
    const auto kind = schedule::StrategyKind::FuseMax;
    const auto opts = fastCost();
    const ServeCostModel cm(arch, cfg, kind, /*max_batch=*/4,
                            /*max_context=*/2048,
                            /*max_prompt=*/1024, opts);

    // The (batch=2, cache=64) grid node must reproduce the public
    // per-step API it was calibrated from.
    model::TransformerConfig two = cfg;
    two.batch = 2;
    const schedule::DecodeEvaluator deval(arch, two, { 1, 0 },
                                          opts.evaluator);
    const double direct = deval.stepMetrics(64, kind).latency_s;
    EXPECT_NEAR(cm.decodeStepSeconds(2, 64.0), direct,
                1e-12 * direct);
}

TEST(ServeCostModel, MonotoneInCacheBatchAndPrompt)
{
    const ServeCostModel cm(
        arch::edgeArch(), model::t5Small(),
        schedule::StrategyKind::FuseMax, /*max_batch=*/8,
        /*max_context=*/4096, /*max_prompt=*/2048, fastCost());

    // Longer caches stream more KV words per step.
    EXPECT_LT(cm.decodeStepSeconds(4, 256),
              cm.decodeStepSeconds(4, 4096));
    // More lanes move more data per step (weights amortize, KV
    // does not).
    EXPECT_LT(cm.decodeStepSeconds(1, 1024),
              cm.decodeStepSeconds(8, 1024));
    // Longer prompts cost more prefill.
    EXPECT_LT(cm.prefillSeconds(128), cm.prefillSeconds(2048));
    // Batch clamps instead of extrapolating.
    EXPECT_DOUBLE_EQ(cm.decodeStepSeconds(64, 1024),
                     cm.decodeStepSeconds(8, 1024));
    EXPECT_GT(cm.decodeStepSeconds(1, 16.0), 0.0);
    EXPECT_GT(cm.prefillSeconds(1), 0.0);
}

TEST(ServeCostModel, OutOfGridQueriesClampToEndpointValues)
{
    // Injected pricing with a steep boundary slope: linear
    // extrapolation below the first cache grid point (64) crosses
    // zero, which once priced short caches at a zero-floored
    // 0 s/step.  The endpoint value is the honest bound.
    ServeCostOptions o;
    o.cache_samples = 3;
    o.prefill_samples = 3;
    const ServeCostModel cm(
        schedule::StrategyKind::FuseMax, /*max_batch=*/1,
        /*max_context=*/4096, /*max_prompt=*/4096, o,
        [](std::int64_t, std::int64_t len) {
            const double v =
                1e-6 * (static_cast<double>(len) - 60.0);
            return StepCost{ v, 2.0 * v };
        },
        [](std::int64_t prompt) {
            const double v =
                1e-6 * (static_cast<double>(prompt) - 60.0);
            return StepCost{ v, 2.0 * v };
        });
    // Below the grid: the len=64 endpoint, never an extrapolated
    // negative or zero price.
    EXPECT_DOUBLE_EQ(cm.decodeStepSeconds(1, 1.0), 4e-6);
    EXPECT_DOUBLE_EQ(cm.prefillSeconds(1), 4e-6);
    EXPECT_GT(cm.decodeStepSeconds(1, 1.0), 0.0);
    // Above the grid: the max_context endpoint.
    EXPECT_DOUBLE_EQ(cm.decodeStepSeconds(1, 1e9),
                     cm.decodeStepSeconds(1, 4096));
    // The joules table rides the same grid and clamping; the
    // injected pricing made energy exactly twice the seconds.
    EXPECT_DOUBLE_EQ(cm.decodeStepJoules(1, 1.0), 8e-6);
    EXPECT_DOUBLE_EQ(cm.prefillJoules(1), 8e-6);
    EXPECT_DOUBLE_EQ(cm.decodeStepJoules(1, 777.0),
                     2.0 * cm.decodeStepSeconds(1, 777.0));
    EXPECT_DOUBLE_EQ(cm.prefillJoules(512),
                     2.0 * cm.prefillSeconds(512));
}

TEST(ServeCostModel, EnergyTablesMatchTheEvaluatorAtGridPoints)
{
    const auto arch = arch::edgeArch();
    const auto cfg = model::t5Small();
    const auto kind = schedule::StrategyKind::FuseMax;
    const auto opts = fastCost();
    const ServeCostModel cm(arch, cfg, kind, /*max_batch=*/4,
                            /*max_context=*/2048,
                            /*max_prompt=*/1024, opts);

    // (batch=2, cache=64) is a calibrated grid node: the joules
    // lookup must reproduce the evaluator's energy exactly, and
    // positive energy must survive interpolation everywhere.
    model::TransformerConfig two = cfg;
    two.batch = 2;
    const schedule::DecodeEvaluator deval(arch, two, { 1, 0 },
                                          opts.evaluator);
    const double direct =
        deval.stepMetrics(64, kind).energy.total();
    EXPECT_NEAR(cm.decodeStepJoules(2, 64.0), direct,
                1e-12 * direct);
    EXPECT_GT(cm.decodeStepJoules(1, 300.0), 0.0);
    EXPECT_GT(cm.prefillJoules(500), 0.0);
    // Longer caches stream more KV — more energy too.
    EXPECT_LT(cm.decodeStepJoules(4, 256),
              cm.decodeStepJoules(4, 2048));
}

TEST(ServeCostModel, StrategiesPriceDifferently)
{
    const auto arch = arch::edgeArch();
    const auto cfg = model::t5Small();
    const ServeCostModel unfused(
        arch, cfg, schedule::StrategyKind::Unfused, 4, 2048, 1024,
        fastCost());
    const ServeCostModel fused(
        arch, cfg, schedule::StrategyKind::FuseMax, 4, 2048, 1024,
        fastCost());
    // Fusion never loses, and wins clearly on prefill.
    EXPECT_GT(unfused.prefillSeconds(1024),
              fused.prefillSeconds(1024));
    EXPECT_GE(unfused.decodeStepSeconds(4, 1024) * 1.001,
              fused.decodeStepSeconds(4, 1024));
}

} // namespace
} // namespace transfusion::serve
