/**
 * @file
 * Unit tests for the KV-cache capacity accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "serve/kv_cache.hh"

namespace transfusion::serve
{
namespace
{

TEST(ServeKvCache, WordsPerTokenIsKAndVAcrossLayers)
{
    const auto cfg = model::t5Small(); // 6 layers, D = 512
    EXPECT_DOUBLE_EQ(kvWordsPerToken(cfg), 2.0 * 6 * 512);
}

TEST(ServeKvCache, WeightWordsMatchesClosedForm)
{
    const auto cfg = model::t5Small(); // D = 512, S = 2048
    const double per_layer =
        4.0 * 512 * 512 + 2.0 * 512 * 2048;
    EXPECT_DOUBLE_EQ(weightWords(cfg), 6.0 * per_layer);
}

TEST(ServeKvCache, CapacitySubtractsWeights)
{
    const auto arch = arch::cloudArch();
    const auto cfg = model::t5Small();
    const double dram = 1e9; // 1 GB override
    const double expect =
        (dram - weightWords(cfg) * arch.element_bytes)
        / arch.element_bytes;
    EXPECT_DOUBLE_EQ(kvCapacityWords(arch, cfg, dram), expect);
    EXPECT_GT(expect, 0);
    // Default capacity scales with bandwidth: cloud >> edge.
    EXPECT_GT(defaultDramCapacityBytes(arch::cloudArch()),
              defaultDramCapacityBytes(arch::edgeArch()));
}

TEST(ServeKvCache, ModelLargerThanDramIsFatal)
{
    const auto arch = arch::cloudArch();
    const auto cfg = model::llama3_8b();
    EXPECT_THROW(kvCapacityWords(arch, cfg, /*dram=*/1e9),
                 FatalError);
}

TEST(ServeKvCache, TrackerReservesReleasesAndPeaks)
{
    KvCacheTracker t(100.0);
    EXPECT_DOUBLE_EQ(t.capacityWords(), 100.0);
    EXPECT_TRUE(t.fitsAlone(100.0));
    EXPECT_FALSE(t.fitsAlone(100.5));

    EXPECT_TRUE(t.tryReserve(60.0));
    EXPECT_TRUE(t.tryReserve(40.0));
    EXPECT_FALSE(t.tryReserve(0.5)); // full
    EXPECT_DOUBLE_EQ(t.reservedWords(), 100.0);

    t.release(60.0);
    EXPECT_DOUBLE_EQ(t.reservedWords(), 40.0);
    EXPECT_TRUE(t.tryReserve(30.0));
    // Peak tracks the high-water mark, not the current level.
    EXPECT_DOUBLE_EQ(t.peakReservedWords(), 100.0);

    EXPECT_THROW(t.release(1000.0), FatalError);
    EXPECT_THROW(KvCacheTracker(0.0), FatalError);
}

TEST(ServeKvCache, SetCapacityResizesWithoutForgettingHistory)
{
    KvCacheTracker t(100.0);
    EXPECT_TRUE(t.tryReserve(80.0));
    t.release(80.0);

    // Shrink (a cluster replan after chip loss): reservations are
    // drained, so any positive budget >= reserved is legal, and the
    // high-water mark survives the resize.
    t.setCapacity(50.0);
    EXPECT_DOUBLE_EQ(t.capacityWords(), 50.0);
    EXPECT_DOUBLE_EQ(t.peakReservedWords(), 80.0);
    EXPECT_FALSE(t.fitsAlone(50.5));
    EXPECT_TRUE(t.tryReserve(50.0));
    EXPECT_FALSE(t.tryReserve(0.5));

    // Growing (recovery) keeps live reservations intact.
    t.setCapacity(120.0);
    EXPECT_DOUBLE_EQ(t.reservedWords(), 50.0);
    EXPECT_TRUE(t.tryReserve(70.0));

    // Shrinking below what is currently reserved is a logic error.
    EXPECT_THROW(t.setCapacity(60.0), FatalError);
    EXPECT_THROW(t.setCapacity(0.0), FatalError);
}

} // namespace
} // namespace transfusion::serve
