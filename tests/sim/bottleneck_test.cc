/**
 * @file
 * Unit tests for the bottleneck analysis, including the paper's
 * memory->compute crossover as sequences grow.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "schedule/evaluator.hh"
#include "sim/bottleneck.hh"

namespace transfusion::sim
{
namespace
{

schedule::LayerMetrics
metricsWith(double compute_s, double dram_s)
{
    schedule::LayerMetrics m;
    m.compute_s = compute_s;
    m.dram_s = dram_s;
    m.latency_s = std::max(compute_s, dram_s);
    return m;
}

TEST(Classify, ThreeRegimes)
{
    EXPECT_EQ(classify(metricsWith(1.0, 2.0)), Bound::Memory);
    EXPECT_EQ(classify(metricsWith(2.0, 1.0)), Bound::Compute);
    EXPECT_EQ(classify(metricsWith(1.0, 1.05)), Bound::Balanced);
}

TEST(Classify, ToleranceRespected)
{
    EXPECT_EQ(classify(metricsWith(1.0, 1.3), 0.5),
              Bound::Balanced);
    EXPECT_EQ(classify(metricsWith(1.0, 1.3), 0.1), Bound::Memory);
}

TEST(Classify, ZeroComputePanics)
{
    EXPECT_THROW(classify(metricsWith(0.0, 1.0)), PanicError);
}

TEST(BoundNames, Printable)
{
    EXPECT_EQ(toString(Bound::Compute), "compute-bound");
    EXPECT_EQ(toString(Bound::Memory), "memory-bound");
    EXPECT_EQ(toString(Bound::Balanced), "balanced");
}

TEST(Analyze, ReportCoversAllLayers)
{
    schedule::EvaluatorOptions opts;
    opts.mcts.iterations = 128;
    schedule::Evaluator eval(arch::cloudArch(), model::bertBase(),
                             4096, opts);
    const auto r = eval.evaluate(schedule::StrategyKind::Unfused);
    const auto report = analyze(r);
    for (double ratio : report.ratios)
        EXPECT_GT(ratio, 0.0);
    const std::string s = report.toString();
    EXPECT_NE(s.find("MHA"), std::string::npos);
    EXPECT_NE(s.find("overall"), std::string::npos);
}

TEST(Analyze, UnfusedLayerNormIsMemoryBound)
{
    // LayerNorm is the canonical low-intensity phase: streaming 3
    // activations for ~6 ops each.
    schedule::EvaluatorOptions opts;
    opts.mcts.iterations = 128;
    schedule::Evaluator eval(arch::cloudArch(),
                             model::llama3_8b(), 4096, opts);
    const auto r = eval.evaluate(schedule::StrategyKind::Unfused);
    const auto report = analyze(r);
    EXPECT_EQ(report.layers[schedule::layerIndex(
                  model::LayerKind::LayerNorm)],
              Bound::Memory);
}

TEST(Analyze, MhaCrossesToComputeBoundWithSequence)
{
    // The paper's crossover: attention becomes compute-bound as
    // the quadratic term grows.
    schedule::EvaluatorOptions opts;
    opts.mcts.iterations = 128;
    const auto arch = arch::cloudArch();
    const auto cfg = model::llama3_8b();
    const auto kind = schedule::layerIndex(model::LayerKind::Mha);

    schedule::Evaluator small(arch, cfg, 1024, opts);
    schedule::Evaluator large(arch, cfg, 1 << 18, opts);
    const auto small_ratio =
        analyze(small.evaluate(schedule::StrategyKind::FuseMax))
            .ratios[kind];
    const auto large_report =
        analyze(large.evaluate(schedule::StrategyKind::FuseMax));
    EXPECT_GT(small_ratio, large_report.ratios[kind]);
    EXPECT_EQ(large_report.layers[kind], Bound::Compute);
}

} // namespace
} // namespace transfusion::sim
