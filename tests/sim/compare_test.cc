/**
 * @file
 * Unit tests for the comparison utilities: speedup, energy ratio,
 * the Eq. 47-48 contribution decomposition, and evaluateAll.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/compare.hh"

namespace transfusion::sim
{
namespace
{

schedule::EvalResult
synthetic(std::array<double, 4> latencies, double energy)
{
    schedule::EvalResult r;
    for (std::size_t i = 0; i < 4; ++i) {
        r.layers[i].latency_s = latencies[i];
        r.total.latency_s += latencies[i];
    }
    r.total.energy.pe_j = energy;
    return r;
}

TEST(Speedup, Ratio)
{
    const auto base = synthetic({ 1, 1, 1, 1 }, 8);
    const auto fast = synthetic({ 0.5, 0.5, 0.5, 0.5 }, 4);
    EXPECT_DOUBLE_EQ(speedup(base, fast), 2.0);
    EXPECT_DOUBLE_EQ(energyRatio(base, fast), 0.5);
}

TEST(SpeedupContribution, MatchesEq47And48ByHand)
{
    // Layer speedups S = {2, 4, 1, 1} with baseline times
    // {2, 4, 1, 1}: weighted = {4, 16, 1, 1}, sum 22.
    const auto base = synthetic({ 2, 4, 1, 1 }, 1);
    const auto opt = synthetic({ 1, 1, 1, 1 }, 1);
    const auto c = speedupContribution(base, opt);
    EXPECT_NEAR(c[0], 4.0 / 22.0, 1e-12);
    EXPECT_NEAR(c[1], 16.0 / 22.0, 1e-12);
    EXPECT_NEAR(c[2], 1.0 / 22.0, 1e-12);
    EXPECT_NEAR(c[3], 1.0 / 22.0, 1e-12);
}

TEST(SpeedupContribution, SumsToOne)
{
    const auto base = synthetic({ 3, 7, 2, 9 }, 1);
    const auto opt = synthetic({ 1, 2, 2, 3 }, 1);
    const auto c = speedupContribution(base, opt);
    EXPECT_NEAR(c[0] + c[1] + c[2] + c[3], 1.0, 1e-12);
    for (double x : c) {
        EXPECT_GT(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(SpeedupContribution, DominantLayerDominates)
{
    // A layer sped up hugely from a huge baseline share should
    // hold nearly the whole contribution.
    const auto base = synthetic({ 1, 100, 1, 1 }, 1);
    const auto opt = synthetic({ 1, 1, 1, 1 }, 1);
    const auto c = speedupContribution(base, opt);
    EXPECT_GT(c[1], 0.95);
}

TEST(PaperSweep, SequencesAreThePapersAxis)
{
    const auto sweep = paperSequenceSweep();
    ASSERT_EQ(sweep.size(), 6u);
    EXPECT_EQ(sweep.front(), 1024);
    EXPECT_EQ(sweep.back(), 1 << 20);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_EQ(sweep[i], sweep[i - 1] * 4);
}

TEST(EvaluateAll, ProducesAllFiveStrategies)
{
    schedule::EvaluatorOptions opts;
    opts.mcts.iterations = 128;
    const auto all = evaluateAll(arch::edgeArch(),
                                 model::t5Small(), 1024, opts);
    EXPECT_EQ(all.size(), 5u);
    for (auto kind : schedule::allStrategies()) {
        ASSERT_TRUE(all.count(kind));
        EXPECT_GT(all.at(kind).total.latency_s, 0.0);
    }
}

TEST(Guards, DegenerateInputsPanic)
{
    const auto ok = synthetic({ 1, 1, 1, 1 }, 1);
    auto zero = synthetic({ 0, 1, 1, 1 }, 1);
    EXPECT_THROW(speedupContribution(ok, zero), PanicError);
    schedule::EvalResult empty;
    EXPECT_THROW(speedup(ok, empty), PanicError);
    EXPECT_THROW(energyRatio(empty, ok), PanicError);
}

} // namespace
} // namespace transfusion::sim
