/**
 * @file
 * Property tests for the planner's Pareto machinery.
 */

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "plan/frontier.hh"

namespace transfusion::plan
{
namespace
{

Objectives
point(double cost, double p99, double rps)
{
    Objectives o;
    o.cost = cost;
    o.p99_latency_s = p99;
    o.throughput_rps = rps;
    return o;
}

std::vector<Objectives>
randomPoints(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<Objectives> pts;
    pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // A coarse value grid on purpose: collisions per axis are
        // common, so the <=/>= edges of dominance get exercised.
        pts.push_back(point(
            static_cast<double>(rng.nextBelow(8)),
            static_cast<double>(rng.nextBelow(8)),
            static_cast<double>(rng.nextBelow(8))));
    }
    return pts;
}

TEST(Dominates, StrictOnAtLeastOneAxisAndNoWorseElsewhere)
{
    const Objectives a = point(1, 1, 10);
    EXPECT_TRUE(dominates(a, point(2, 1, 10))); // cheaper
    EXPECT_TRUE(dominates(a, point(1, 2, 10))); // faster tail
    EXPECT_TRUE(dominates(a, point(1, 1, 5)));  // more throughput
    EXPECT_TRUE(dominates(a, point(3, 4, 2))); // better everywhere
    // Trade-offs dominate in neither direction.
    EXPECT_FALSE(dominates(a, point(0.5, 2, 10)));
    EXPECT_FALSE(dominates(point(0.5, 2, 10), a));
    // Equal triples are mutually non-dominating.
    EXPECT_FALSE(dominates(a, a));
}

TEST(ParetoFrontier, NoReturnedPointIsDominated)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto pts = randomPoints(seed, 64);
        const auto frontier = paretoFrontier(pts);
        ASSERT_FALSE(frontier.empty());
        for (const std::size_t i : frontier)
            for (std::size_t j = 0; j < pts.size(); ++j)
                EXPECT_FALSE(dominates(pts[j], pts[i]))
                    << "frontier point " << i
                    << " is dominated by " << j << " (seed "
                    << seed << ")";
    }
}

TEST(ParetoFrontier, EveryExcludedPointIsDominatedByAFrontierPoint)
{
    const auto pts = randomPoints(/*seed=*/11, 64);
    const auto frontier = paretoFrontier(pts);
    const std::set<std::size_t> on(frontier.begin(),
                                   frontier.end());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (on.count(i))
            continue;
        bool covered = false;
        for (const std::size_t f : frontier)
            covered = covered || dominates(pts[f], pts[i]);
        EXPECT_TRUE(covered)
            << "excluded point " << i
            << " is not dominated by any frontier point";
    }
}

TEST(ParetoFrontier, InsertionOrderInvariant)
{
    for (std::uint64_t seed = 21; seed <= 23; ++seed) {
        const auto pts = randomPoints(seed, 48);
        const auto frontier = paretoFrontier(pts);

        // Shuffle with a seeded Fisher-Yates, recompute, and map
        // the returned indices back through the permutation: the
        // *set of points* on the frontier must be unchanged.
        std::vector<std::size_t> perm(pts.size());
        for (std::size_t i = 0; i < perm.size(); ++i)
            perm[i] = i;
        Rng rng(seed * 977);
        for (std::size_t i = perm.size(); i > 1; --i)
            std::swap(perm[i - 1], perm[rng.nextBelow(i)]);

        std::vector<Objectives> shuffled(pts.size());
        for (std::size_t i = 0; i < pts.size(); ++i)
            shuffled[i] = pts[perm[i]];

        std::vector<std::size_t> mapped;
        for (const std::size_t i : paretoFrontier(shuffled))
            mapped.push_back(perm[i]);
        std::sort(mapped.begin(), mapped.end());

        std::vector<std::size_t> expected(frontier);
        std::sort(expected.begin(), expected.end());
        EXPECT_EQ(mapped, expected) << "seed " << seed;
    }
}

TEST(ParetoFrontier, DuplicateOptimaAllSurvive)
{
    const std::vector<Objectives> pts = {
        point(1, 1, 10), point(1, 1, 10), // bit-equal optima
        point(5, 5, 1),                   // dominated
    };
    const std::vector<std::size_t> expected = { 0, 1 };
    EXPECT_EQ(paretoFrontier(pts), expected);
}

TEST(ParetoFrontier, IndicesAscendAndSingletonIsTrivial)
{
    const auto pts = randomPoints(/*seed=*/31, 40);
    const auto frontier = paretoFrontier(pts);
    EXPECT_TRUE(std::is_sorted(frontier.begin(), frontier.end()));
    EXPECT_EQ(paretoFrontier({ point(3, 2, 1) }),
              std::vector<std::size_t>{ 0 });
    EXPECT_TRUE(paretoFrontier({}).empty());
}

} // namespace
} // namespace transfusion::plan
