/**
 * @file
 * Tests for the capacity planner: the analytic throughput bound,
 * the required-rate trace summary, search-space enumeration, and
 * the end-to-end contract — the frontier holds only non-dominated
 * feasible candidates, the best spec reproduces its feasibility on
 * an independent re-simulation, pruning never changes the answer,
 * and plan() is bit-identical across thread counts.
 */

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"
#include "obs/report.hh"
#include "plan/planner.hh"
#include "serve/workload.hh"

namespace transfusion::plan
{
namespace
{

serve::WorkloadOptions
lightWorkload()
{
    serve::WorkloadOptions wl;
    wl.arrival_per_s = 40.0;
    wl.requests = 48;
    wl.prompt = { 128, 256 };
    wl.output = { 16, 32 };
    return wl;
}

/** Calibration kept tiny: the tests exercise the search, not the
 *  evaluator's fidelity. */
PlannerOptions
fastOptions()
{
    PlannerOptions o;
    o.serve.max_batch = 4;
    o.serve.cost.cache_samples = 3;
    o.serve.cost.prefill_samples = 3;
    o.serve.cost.evaluator.mcts.iterations = 32;
    return o;
}

SearchSpace
smallSpace()
{
    SearchSpace space;
    space.clusters = { "edge" };
    space.chip_counts = { 1, 2 };
    space.replica_counts = { 1, 2 };
    space.policies = { fleet::PolicyKind::RoundRobin };
    return space;
}

TEST(DecodeThroughputBound, MaximizesOverTheCalibratedGrid)
{
    // Injected pricing with constant step seconds: the largest
    // batch wins, and the grid (powers of two up to max batch 4)
    // makes the maximum 4 / 1e-3.
    serve::ServeCostOptions copts;
    copts.cache_samples = 2;
    copts.prefill_samples = 2;
    const auto constant_step = [](std::int64_t, std::int64_t) {
        return serve::StepCost{ 1e-3, 0.0 };
    };
    const auto prefill = [](std::int64_t) {
        return serve::StepCost{ 1e-3, 0.0 };
    };
    const serve::ServeCostModel flat(
        schedule::StrategyKind::TransFusion, /*max_batch=*/4,
        /*max_context=*/64, /*max_prompt=*/64, copts,
        constant_step, prefill);
    EXPECT_DOUBLE_EQ(decodeThroughputBound(flat), 4.0 / 1e-3);

    // Seconds proportional to batch: batch / seconds is the same
    // at every grid point, so the bound equals that constant.
    const auto linear_step = [](std::int64_t batch, std::int64_t) {
        return serve::StepCost{ 1e-3 * static_cast<double>(batch),
                                0.0 };
    };
    const serve::ServeCostModel linear(
        schedule::StrategyKind::TransFusion, 4, 64, 64, copts,
        linear_step, prefill);
    EXPECT_DOUBLE_EQ(decodeThroughputBound(linear), 1.0 / 1e-3);

    // The bound is reached on the grid: no calibrated batch can
    // beat it at the cheapest cache length.
    for (const std::int64_t b : linear.calibratedBatches())
        EXPECT_LE(static_cast<double>(b)
                      / linear.decodeStepSeconds(b, 1.0),
                  decodeThroughputBound(linear) + 1e-12);
}

TEST(RequiredTokensPerSecond, IsAConservativeTraceSummary)
{
    const auto trace =
        serve::generateWorkload(lightWorkload(), /*seed=*/3);
    SloSpec tight;
    tight.p99_latency_s = 1.0;
    SloSpec loose;
    loose.p99_latency_s = 100.0;

    const double demanding = requiredTokensPerSecond(trace, tight);
    const double relaxed = requiredTokensPerSecond(trace, loose);
    EXPECT_GT(demanding, 0);
    // A looser latency bound extends the deadline, so the demanded
    // rate can only fall.
    EXPECT_LT(relaxed, demanding);

    // A shed budget discounts whole requests, so it too can only
    // lower the demand.
    SloSpec shedding = tight;
    shedding.max_reject_rate = 0.25;
    EXPECT_LT(requiredTokensPerSecond(trace, shedding), demanding);

    EXPECT_EQ(requiredTokensPerSecond({}, tight), 0);
}

TEST(SearchSpace, EnumerationOrderBudgetAndAutoscaler)
{
    const auto cfg = model::t5Small();
    SearchSpace space = smallSpace();
    space.replica_counts = { 1, 2, 4 };
    const auto specs = space.enumerate(cfg);
    ASSERT_FALSE(specs.empty());

    // Fixed nested order: chips major, then (tp, pp), then
    // replicas — so per-replica chip counts are non-decreasing and
    // replicas ascend within one (chips, shard) block.
    for (std::size_t i = 1; i < specs.size(); ++i) {
        EXPECT_GE(specs[i].chips, specs[i - 1].chips);
        if (specs[i].chips == specs[i - 1].chips
            && specs[i].shard.tp == specs[i - 1].shard.tp
            && specs[i].shard.pp == specs[i - 1].shard.pp) {
            EXPECT_GE(specs[i].replicas, specs[i - 1].replicas);
        }
    }
    for (const DeploymentSpec &s : specs) {
        EXPECT_EQ(s.shard.chips(), s.chips);
        EXPECT_FALSE(s.autoscaler);
    }

    // The chip budget filters totalChips, and every in-budget
    // candidate survives.
    SearchSpace capped = space;
    capped.budget_chips = 4;
    const auto within = capped.enumerate(cfg);
    for (const DeploymentSpec &s : within)
        EXPECT_LE(s.totalChips(), 4);
    std::size_t in_budget = 0;
    for (const DeploymentSpec &s : specs)
        in_budget += s.totalChips() <= 4;
    EXPECT_EQ(within.size(), in_budget);

    // try_autoscaler duplicates multi-replica candidates only: a
    // 1-replica pool cannot scale.
    SearchSpace scaled = space;
    scaled.try_autoscaler = true;
    std::size_t multi = 0;
    for (const DeploymentSpec &s : specs)
        multi += s.replicas > 1;
    const auto with_as = scaled.enumerate(cfg);
    EXPECT_EQ(with_as.size(), specs.size() + multi);
    for (const DeploymentSpec &s : with_as)
        if (s.autoscaler) {
            EXPECT_GT(s.replicas, 1);
        }
}

TEST(CapacityPlanner, FrontierIsFeasibleNonDominatedAndBestIsOnIt)
{
    SloSpec slo;
    slo.p99_latency_s = 2.0;
    const CapacityPlanner planner(model::t5Small(),
                                  lightWorkload(), slo,
                                  fastOptions());
    const PlanResult result = planner.plan(smallSpace(), 7);

    ASSERT_TRUE(result.best.has_value());
    ASSERT_FALSE(result.frontier.empty());
    EXPECT_EQ(result.enumerated,
              static_cast<std::int64_t>(result.candidates.size()));

    const std::set<std::size_t> on(result.frontier.begin(),
                                   result.frontier.end());
    for (const std::size_t i : result.frontier) {
        EXPECT_EQ(result.candidates[i].status,
                  CandidateStatus::Feasible);
        for (std::size_t j = 0; j < result.candidates.size();
             ++j) {
            if (result.candidates[j].status
                != CandidateStatus::Feasible)
                continue;
            EXPECT_FALSE(
                dominates(result.candidates[j].objectives,
                          result.candidates[i].objectives))
                << "frontier point " << i << " dominated by " << j;
        }
    }

    // Best is the cheapest feasible candidate and, being
    // lexicographically optimal, always sits on the frontier.
    EXPECT_TRUE(on.count(*result.best));
    const double best_cost =
        result.bestOutcome().objectives.cost;
    for (const CandidateOutcome &c : result.candidates)
        if (c.status == CandidateStatus::Feasible) {
            EXPECT_GE(c.objectives.cost, best_cost);
        }
}

TEST(CapacityPlanner, BestSpecMeetsTheSloOnIndependentResimulation)
{
    SloSpec slo;
    slo.p99_latency_s = 2.0;
    const auto wl = lightWorkload();
    const auto opts = fastOptions();
    const std::uint64_t seed = 7;
    const CapacityPlanner planner(model::t5Small(), wl, slo, opts);
    const PlanResult result = planner.plan(smallSpace(), seed);
    ASSERT_TRUE(result.best.has_value());
    const DeploymentSpec &spec = result.bestOutcome().spec;

    // Rebuild the deployment from its spec alone and replay the
    // same trace: the feasibility claim must reproduce.
    fleet::FleetOptions fo;
    fo.serve = opts.serve;
    const auto fleet = fleet::FleetSimulator::uniform(
        spec.replicas,
        multichip::clusterByName(spec.cluster, spec.chips),
        spec.shard, model::t5Small(), wl, fo);
    fleet::FleetRunOptions run;
    run.policy = spec.policy;
    run.seed = seed;
    const auto m =
        fleet.run(serve::generateWorkload(wl, seed), run);
    EXPECT_LE(m.latency_s.percentileOr(
                  99, std::numeric_limits<double>::infinity()),
              slo.p99_latency_s);
    EXPECT_EQ(m.rejected, 0);
    // And the planner priced exactly this run.
    EXPECT_EQ(result.bestOutcome().objectives.throughput_rps,
              m.completed_per_second);
}

TEST(CapacityPlanner, PruningSkipsReplaysButNeverChangesTheAnswer)
{
    // Heavy enough that small deployments are provably
    // under-provisioned (the bench uses the same shape).
    serve::WorkloadOptions wl = lightWorkload();
    wl.arrival_per_s = 2000.0;
    wl.requests = 64;
    wl.output = { 128, 256 };
    SloSpec slo;
    slo.p99_latency_s = 2.0;

    SearchSpace space = smallSpace();
    space.chip_counts = { 1, 2, 4 };
    space.replica_counts = { 1, 2, 4 };

    PlannerOptions pruned_opts = fastOptions();
    PlannerOptions full_opts = pruned_opts;
    full_opts.prune = false;

    const CapacityPlanner pruned(model::t5Small(), wl, slo,
                                 pruned_opts);
    const CapacityPlanner full(model::t5Small(), wl, slo,
                               full_opts);
    const PlanResult a = pruned.plan(space, 11);
    const PlanResult b = full.plan(space, 11);

    EXPECT_GT(a.pruned, 0);
    EXPECT_EQ(b.pruned, 0);
    EXPECT_LT(a.simulated, b.simulated);
    // Identical decision surface: every pruned candidate was
    // indeed infeasible, so frontier and best agree exactly.
    EXPECT_EQ(a.frontier, b.frontier);
    EXPECT_EQ(a.best, b.best);
    EXPECT_EQ(a.feasible, b.feasible);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (std::size_t i = 0; i < a.candidates.size(); ++i) {
        if (a.candidates[i].status == CandidateStatus::Pruned) {
            EXPECT_EQ(b.candidates[i].status,
                      CandidateStatus::Infeasible)
                << "pruned candidate " << i
                << " was feasible when simulated";
            continue;
        }
        EXPECT_EQ(a.candidates[i].status, b.candidates[i].status);
        EXPECT_EQ(a.candidates[i].objectives.cost,
                  b.candidates[i].objectives.cost);
    }
}

TEST(CapacityPlanner, PlanIsBitIdenticalAcrossThreadCounts)
{
    SloSpec slo;
    slo.p99_latency_s = 2.0;
    const auto wl = lightWorkload();
    const auto space = smallSpace();

    const auto report = [&](int threads, std::uint64_t seed,
                            PlanResult &out) {
        PlannerOptions opts = fastOptions();
        opts.threads = threads;
        const CapacityPlanner planner(model::t5Small(), wl, slo,
                                      opts);
        obs::Registry local;
        {
            obs::ScopedRegistry scope(local);
            out = planner.plan(space, seed);
        }
        return obs::RunReport::capture(local).toString();
    };

    for (const std::uint64_t seed : { 5ull, 6ull, 7ull }) {
        PlanResult serial, fanned;
        const std::string a = report(1, seed, serial);
        const std::string b = report(4, seed, fanned);
        EXPECT_EQ(a, b) << "seed " << seed
                        << ": report drifted across thread counts";
        EXPECT_EQ(serial.frontier, fanned.frontier);
        EXPECT_EQ(serial.best, fanned.best);
        ASSERT_EQ(serial.candidates.size(),
                  fanned.candidates.size());
        for (std::size_t i = 0; i < serial.candidates.size();
             ++i) {
            const CandidateOutcome &x = serial.candidates[i];
            const CandidateOutcome &y = fanned.candidates[i];
            EXPECT_EQ(x.status, y.status);
            EXPECT_EQ(x.objectives.cost, y.objectives.cost);
            EXPECT_EQ(x.objectives.p99_latency_s,
                      y.objectives.p99_latency_s);
            EXPECT_EQ(x.objectives.throughput_rps,
                      y.objectives.throughput_rps);
            EXPECT_EQ(x.why, y.why);
        }
    }
}

TEST(CapacityPlanner, FaultScenarioGatesFeasibility)
{
    // The SLO demands surviving a permanent chip loss on replica
    // 0: a single replica loses everything, a second replica
    // absorbs the failover.
    serve::WorkloadOptions wl = lightWorkload();
    wl.arrival_per_s = 10.0;
    wl.requests = 24;

    SloSpec slo;
    slo.p99_latency_s = 30.0;
    slo.faults.events.push_back(
        { 0.0, fault::FaultKind::ChipLoss, 0 });
    slo.max_fault_reject_rate = 0.05;

    SearchSpace space = smallSpace();
    space.chip_counts = { 1 };
    space.replica_counts = { 1, 2 };

    const CapacityPlanner planner(model::t5Small(), wl, slo,
                                  fastOptions());
    const PlanResult result = planner.plan(space, 13);
    ASSERT_EQ(result.candidates.size(), 2u);

    const CandidateOutcome &solo = result.candidates[0];
    EXPECT_EQ(solo.spec.replicas, 1);
    EXPECT_EQ(solo.status, CandidateStatus::Infeasible);
    EXPECT_EQ(solo.fault_reject_rate, 1.0)
        << "a one-replica fleet with its only chip down must "
           "reject everything";
    EXPECT_NE(solo.why.find("faulted"), std::string::npos);

    const CandidateOutcome &pair = result.candidates[1];
    EXPECT_EQ(pair.spec.replicas, 2);
    EXPECT_EQ(pair.status, CandidateStatus::Feasible);
    EXPECT_LE(pair.fault_reject_rate, 0.05);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_EQ(*result.best, 1u);
}

TEST(CapacityPlanner, SlowdownScenarioGatesFeasibility)
{
    // Gray-failure availability: the SLO demands absorbing a
    // permanent heavy throttle on replica 0.  The chip never goes
    // down — a slowdown drops nothing by itself — so the gate
    // trips through the bounded queue: the throttled replica
    // sheds arrivals it can no longer keep up with, while a
    // second replica absorbs the load and stays feasible.
    serve::WorkloadOptions wl = lightWorkload();
    wl.arrival_per_s = 20.0;
    wl.requests = 32;

    SloSpec slo;
    slo.p99_latency_s = 60.0;
    slo.faults.events.push_back(
        { 0.0, fault::FaultKind::ChipSlowdown, 0, 200.0 });
    slo.max_fault_reject_rate = 0.05;

    PlannerOptions opts = fastOptions();
    opts.serve.max_queue = 4;
    SearchSpace space = smallSpace();
    space.chip_counts = { 1 };
    space.replica_counts = { 1, 2 };
    // Load-aware routing is the point: a blind round-robin would
    // keep feeding the throttled replica and shed half the trace
    // even with a healthy sibling available.
    space.policies = { fleet::PolicyKind::LeastOutstanding };

    const CapacityPlanner planner(model::t5Small(), wl, slo,
                                  opts);
    const PlanResult result = planner.plan(space, 13);
    ASSERT_EQ(result.candidates.size(), 2u);

    const CandidateOutcome &solo = result.candidates[0];
    EXPECT_EQ(solo.spec.replicas, 1);
    EXPECT_EQ(solo.status, CandidateStatus::Infeasible)
        << "a fleet whose only replica runs 200x slow must shed "
           "past the availability bound";
    EXPECT_GT(solo.fault_reject_rate,
              slo.max_fault_reject_rate);
    EXPECT_NE(solo.why.find("faulted"), std::string::npos);

    const CandidateOutcome &pair = result.candidates[1];
    EXPECT_EQ(pair.spec.replicas, 2);
    EXPECT_EQ(pair.status, CandidateStatus::Feasible);
    EXPECT_LE(pair.fault_reject_rate, 0.05);
    ASSERT_TRUE(result.best.has_value());
    EXPECT_EQ(*result.best, 1u);
}

TEST(CapacityPlanner, MemoryUnfitShortCircuitsBeforeCalibration)
{
    // A model far past any preset chip's DRAM: the planner must
    // classify it without paying for calibration (this test would
    // take minutes otherwise).
    model::TransformerConfig giant;
    giant.name = "giant";
    giant.layers = 200;
    giant.d_model = 8192;
    giant.heads = 64;
    giant.head_dim = 128;
    giant.ffn_hidden = 32768;

    SearchSpace space = smallSpace();
    space.chip_counts = { 1 };
    space.replica_counts = { 1 };

    SloSpec slo;
    const CapacityPlanner planner(giant, lightWorkload(), slo,
                                  fastOptions());
    const PlanResult result = planner.plan(space, 1);
    ASSERT_EQ(result.candidates.size(), 1u);
    EXPECT_EQ(result.candidates[0].status,
              CandidateStatus::MemoryUnfit);
    EXPECT_EQ(result.memory_unfit, 1);
    EXPECT_FALSE(result.best.has_value());
    EXPECT_TRUE(result.frontier.empty());
    EXPECT_NE(result.candidates[0].why.find("DRAM"),
              std::string::npos);
}

} // namespace
} // namespace transfusion::plan
