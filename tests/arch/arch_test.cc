/**
 * @file
 * Unit tests for the architecture presets (Table 3).
 */

#include <gtest/gtest.h>

#include "arch/arch.hh"
#include "common/logging.hh"

namespace transfusion::arch
{
namespace
{

TEST(ArchPresets, CloudMatchesTable3)
{
    const ArchConfig a = cloudArch();
    EXPECT_EQ(a.pe2d.rows, 256);
    EXPECT_EQ(a.pe2d.cols, 256);
    EXPECT_EQ(a.pe2d.count(), 256 * 256);
    EXPECT_EQ(a.pe1d, 256);
    EXPECT_EQ(a.buffer_bytes, std::int64_t{16} << 20);
    EXPECT_DOUBLE_EQ(a.dram_bytes_per_sec, 400e9);
}

TEST(ArchPresets, EdgeMatchesTable3)
{
    const ArchConfig a = edgeArch();
    EXPECT_EQ(a.pe2d.rows, 16);
    EXPECT_EQ(a.pe2d.cols, 16);
    EXPECT_EQ(a.pe1d, 256);
    EXPECT_EQ(a.buffer_bytes, std::int64_t{5} << 20);
    EXPECT_DOUBLE_EQ(a.dram_bytes_per_sec, 30e9);
}

TEST(ArchPresets, PeScalingVariants)
{
    EXPECT_EQ(edgeArch32().pe2d.rows, 32);
    EXPECT_EQ(edgeArch32().buffer_bytes, std::int64_t{5} << 20);
    // Sec. 6.2: 64x64 raises the buffer to 8 MB.
    EXPECT_EQ(edgeArch64().pe2d.rows, 64);
    EXPECT_EQ(edgeArch64().buffer_bytes, std::int64_t{8} << 20);
}

TEST(ArchPresets, PeakRatesConsistent)
{
    const ArchConfig a = cloudArch();
    EXPECT_DOUBLE_EQ(a.peak2dOpsPerSec(),
                     65536.0 * a.clock_hz);
    EXPECT_DOUBLE_EQ(a.peak1dOpsPerSec(), 256.0 * a.clock_hz);
    EXPECT_GT(a.peak2dOpsPerSec(), a.peak1dOpsPerSec());
}

TEST(ArchPresets, EnergyOrdering)
{
    // Per-access energy must grow down the hierarchy:
    // RF < buffer < DRAM word.
    for (const auto &a : { cloudArch(), edgeArch(), edgeArch32(),
                           edgeArch64() }) {
        EXPECT_LT(a.energy.reg_pj, a.energy.buffer_pj) << a.name;
        EXPECT_LT(a.energy.buffer_pj,
                  a.energy.dram_pj_per_byte
                      * static_cast<double>(a.element_bytes))
            << a.name;
    }
}

TEST(ArchPresets, EdgeDramCostlierPerByte)
{
    // LPDDR-class vs HBM-class.
    EXPECT_GT(edgeArch().energy.dram_pj_per_byte,
              cloudArch().energy.dram_pj_per_byte);
}

TEST(ArchPresets, LookupByName)
{
    EXPECT_EQ(archByName("cloud").name, "cloud");
    EXPECT_EQ(archByName("edge").name, "edge");
    EXPECT_EQ(archByName("edge32").pe2d.cols, 32);
    EXPECT_EQ(archByName("edge64").pe2d.cols, 64);
    EXPECT_THROW(archByName("gpu"), FatalError);
}

TEST(ArchPresets, ToStringMentionsKeyNumbers)
{
    const std::string s = cloudArch().toString();
    EXPECT_NE(s.find("256x256"), std::string::npos);
    EXPECT_NE(s.find("16MB"), std::string::npos);
    EXPECT_NE(s.find("400"), std::string::npos);
}

} // namespace
} // namespace transfusion::arch
