/**
 * @file
 * Functional validation of the paper's cascades: executing Cascade
 * 2 (QKV), Cascade 3 (Add & LayerNorm) and Cascade 4 (FFN) through
 * the interpreter reproduces the reference Transformer bit-for-bit
 * (fp64), and the unfused-MHA cascade reproduces naive attention.
 * Also checks the structural properties DPipe depends on.
 */

#include <gtest/gtest.h>

#include "model/cascades.hh"
#include "ref/interpreter.hh"
#include "ref/reference.hh"

namespace transfusion::model
{
namespace
{

using einsum::DimEnv;
using ref::Bindings;
using transfusion::Rng;
using ref::Tensor;

/** Small model for functional tests. */
TransformerConfig
tinyConfig()
{
    TransformerConfig c;
    c.name = "tiny";
    c.layers = 1;
    c.heads = 2;
    c.head_dim = 4;
    c.d_model = 8;
    c.ffn_hidden = 16;
    c.activation = einsum::UnaryOp::Relu;
    c.batch = 1;
    return c;
}

TEST(QkvCascade, MatchesReferenceProjections)
{
    const TransformerConfig cfg = tinyConfig();
    const std::int64_t p = 3, m0 = 3, m1 = 2;
    const DimEnv dims = makeDims(cfg, p, m0, m1);

    Rng rng(101);
    const Tensor input =
        Tensor::random({ cfg.d_model, p }, rng);
    const Tensor input_kv =
        Tensor::random({ cfg.d_model, m1, m0 }, rng);
    const Tensor wq = Tensor::random(
        { cfg.d_model, cfg.heads, cfg.head_dim }, rng);
    const Tensor wk = Tensor::random(
        { cfg.d_model, cfg.heads, cfg.head_dim }, rng);
    const Tensor wv = Tensor::random(
        { cfg.d_model, cfg.heads, cfg.head_dim }, rng);

    Bindings in;
    in["INPUT"] = input;
    in["INPUT_KV"] = input_kv;
    in["WQ"] = wq;
    in["WK"] = wk;
    in["WV"] = wv;
    const Bindings out =
        ref::evaluateCascade(buildQkvCascade(), dims, in);

    // Q against the reference projection.
    const Tensor q_ref = ref::projectQkv(input, wq);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("Q"), q_ref), 1e-12);

    // BK against a flattened-context reference projection.
    Tensor kv_flat({ cfg.d_model, m1 * m0 });
    for (std::int64_t d = 0; d < cfg.d_model; ++d) {
        for (std::int64_t i = 0; i < m1 * m0; ++i) {
            kv_flat.at({ d, i }) =
                input_kv.at({ d, i / m0, i % m0 });
        }
    }
    const Tensor k_ref = ref::projectQkv(kv_flat, wk);
    const Tensor &bk = out.at("BK");
    for (std::int64_t h = 0; h < cfg.heads; ++h) {
        for (std::int64_t e = 0; e < cfg.head_dim; ++e) {
            for (std::int64_t i = 0; i < m1 * m0; ++i) {
                EXPECT_NEAR(bk.at({ h, e, i / m0, i % m0 }),
                            k_ref.at({ h, e, i }), 1e-12);
            }
        }
    }
}

TEST(LayerNormCascade, MatchesReferenceLayerNorm)
{
    const TransformerConfig cfg = tinyConfig();
    const DimEnv dims = makeDims(cfg, 5, 1, 1);

    Rng rng(55);
    const Tensor inp = Tensor::random(
        { cfg.heads, cfg.head_dim, 5 }, rng);
    const Tensor av = Tensor::random(
        { cfg.heads, cfg.head_dim, 5 }, rng);

    Bindings in;
    in["INP"] = inp;
    in["AV"] = av;
    const Bindings out = ref::evaluateCascade(
        buildCascade(LayerKind::LayerNorm, cfg), dims, in);

    const Tensor nr_ref = ref::addLayerNorm(inp, av);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("NR"), nr_ref), 1e-10);
}

TEST(FfnCascade, MatchesReferenceFeedForward)
{
    const TransformerConfig cfg = tinyConfig();
    const DimEnv dims = makeDims(cfg, 4, 1, 1);

    Rng rng(77);
    const Tensor nr = Tensor::random(
        { cfg.heads, cfg.head_dim, 4 }, rng);
    const Tensor wf1 = Tensor::random(
        { cfg.heads, cfg.head_dim, cfg.ffn_hidden }, rng, -0.5,
        0.5);
    const Tensor bf1 = Tensor::random({ cfg.ffn_hidden }, rng);
    const Tensor wf2 = Tensor::random(
        { cfg.heads, cfg.head_dim, cfg.ffn_hidden }, rng, -0.5,
        0.5);
    const Tensor bf2 = Tensor::random(
        { cfg.heads, cfg.head_dim }, rng);

    Bindings in;
    in["NR"] = nr;
    in["WF1"] = wf1;
    in["BF1"] = bf1;
    in["WF2"] = wf2;
    in["BF2"] = bf2;
    const Bindings out = ref::evaluateCascade(
        buildFfnCascade(cfg.activation), dims, in);

    const Tensor ref_out = ref::feedForward(nr, wf1, bf1, wf2, bf2,
                                            cfg.activation);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("FFN2B"), ref_out), 1e-10);
}

TEST(FfnCascade, EveryPaperActivationAgrees)
{
    const TransformerConfig base = tinyConfig();
    const DimEnv dims = makeDims(base, 2, 1, 1);
    Rng rng(88);
    const Tensor nr = Tensor::random(
        { base.heads, base.head_dim, 2 }, rng);
    const Tensor wf1 = Tensor::random(
        { base.heads, base.head_dim, base.ffn_hidden }, rng);
    const Tensor bf1 = Tensor::random({ base.ffn_hidden }, rng);
    const Tensor wf2 = Tensor::random(
        { base.heads, base.head_dim, base.ffn_hidden }, rng);
    const Tensor bf2 = Tensor::random(
        { base.heads, base.head_dim }, rng);

    for (auto act : { einsum::UnaryOp::Relu, einsum::UnaryOp::Gelu,
                      einsum::UnaryOp::Silu }) {
        Bindings in;
        in["NR"] = nr;
        in["WF1"] = wf1;
        in["BF1"] = bf1;
        in["WF2"] = wf2;
        in["BF2"] = bf2;
        const Bindings out = ref::evaluateCascade(
            buildFfnCascade(act), dims, in);
        const Tensor expect = ref::feedForward(nr, wf1, bf1, wf2,
                                               bf2, act);
        EXPECT_LT(Tensor::maxAbsDiff(out.at("FFN2B"), expect),
                  1e-10);
    }
}

TEST(UnfusedMhaCascade, MatchesNaiveAttention)
{
    const TransformerConfig cfg = tinyConfig();
    const std::int64_t p = 3, m0 = 4, m1 = 2;
    const DimEnv dims = makeDims(cfg, p, m0, m1);

    Rng rng(99);
    const Tensor q = Tensor::random(
        { cfg.heads, cfg.head_dim, p }, rng);
    // Context in (m1, m0) blocked layout.
    const Tensor bk = Tensor::random(
        { cfg.heads, cfg.head_dim, m1, m0 }, rng);
    const Tensor bv = Tensor::random(
        { cfg.heads, cfg.head_dim, m1, m0 }, rng);

    Bindings in;
    in["Q"] = q;
    in["BK"] = bk;
    in["BV"] = bv;
    const Bindings out = ref::evaluateCascade(
        buildUnfusedMhaCascade(), dims, in);

    // Flatten the blocked context for the reference.
    Tensor k_flat({ cfg.heads, cfg.head_dim, m1 * m0 });
    Tensor v_flat({ cfg.heads, cfg.head_dim, m1 * m0 });
    for (std::int64_t h = 0; h < cfg.heads; ++h) {
        for (std::int64_t e = 0; e < cfg.head_dim; ++e) {
            for (std::int64_t i = 0; i < m1 * m0; ++i) {
                k_flat.at({ h, e, i }) =
                    bk.at({ h, e, i / m0, i % m0 });
                v_flat.at({ h, e, i }) =
                    bv.at({ h, e, i / m0, i % m0 });
            }
        }
    }
    const Tensor expect = ref::naiveAttention(q, k_flat, v_flat);
    EXPECT_LT(Tensor::maxAbsDiff(out.at("AV"), expect), 1e-10);
}

TEST(MhaCascade, HasTwelvePaperOps)
{
    const auto c = buildMhaCascade();
    EXPECT_EQ(c.size(), 12u);
    EXPECT_EQ(c.opNames(),
              (std::vector<std::string>{
                  "BQK", "LM", "RM", "SLN", "SLD", "SLNV", "PRM",
                  "SPD", "RD", "SPNV", "RNV", "AV" }));
}

TEST(MhaCascade, DagStructureMatchesFig2)
{
    const auto c = buildMhaCascade();
    const auto dag = c.buildDag();
    EXPECT_TRUE(dag.isAcyclic());
    auto id = [&](const char *n) { return c.producerOf(n); };
    EXPECT_TRUE(dag.hasEdge(id("BQK"), id("LM")));
    EXPECT_TRUE(dag.hasEdge(id("LM"), id("RM")));
    EXPECT_TRUE(dag.hasEdge(id("BQK"), id("SLN")));
    EXPECT_TRUE(dag.hasEdge(id("RM"), id("SLN")));
    EXPECT_TRUE(dag.hasEdge(id("SLN"), id("SLD")));
    EXPECT_TRUE(dag.hasEdge(id("SLN"), id("SLNV")));
    EXPECT_TRUE(dag.hasEdge(id("RM"), id("PRM")));
    EXPECT_TRUE(dag.hasEdge(id("PRM"), id("SPD")));
    EXPECT_TRUE(dag.hasEdge(id("SLD"), id("RD")));
    EXPECT_TRUE(dag.hasEdge(id("SPD"), id("RD")));
    EXPECT_TRUE(dag.hasEdge(id("RNV"), id("AV")));
    EXPECT_TRUE(dag.hasEdge(id("RD"), id("AV")));
    // Loop-carried reads must not appear as edges.
    EXPECT_FALSE(dag.hasEdge(id("RD"), id("SPD")));
    EXPECT_FALSE(dag.hasEdge(id("RNV"), id("SPNV")));
    // BQK is the only source; AV the only sink.
    EXPECT_EQ(dag.sources(), (std::vector<int>{ id("BQK") }));
    EXPECT_EQ(dag.sinks(), (std::vector<int>{ id("AV") }));
}

TEST(MhaCascade, PeClassesSplitAsInFuseMax)
{
    const auto c = buildMhaCascade();
    for (const auto &op : c.ops()) {
        const bool matrix =
            op.peClass() == einsum::PeClass::Matrix;
        if (op.name() == "BQK" || op.name() == "SLNV")
            EXPECT_TRUE(matrix) << op.name();
        else
            EXPECT_FALSE(matrix) << op.name();
    }
}

TEST(QkvCascade, AllOpsAreMatrixClass)
{
    const auto cascade = buildQkvCascade();
    for (const auto &op : cascade.ops())
        EXPECT_EQ(op.peClass(), einsum::PeClass::Matrix);
}

TEST(QkvCascade, OpsAreIndependent)
{
    EXPECT_EQ(buildQkvCascade().buildDag().edgeCount(), 0);
}

TEST(LayerNormCascade, ScaleBoundToModelDim)
{
    const TransformerConfig cfg = tinyConfig();
    const auto c = buildCascade(LayerKind::LayerNorm, cfg);
    const auto &mav = c.op(static_cast<std::size_t>(
        c.producerOf("MAV")));
    EXPECT_DOUBLE_EQ(mav.scaleFactor(),
                     1.0 / static_cast<double>(cfg.d_model));
}

TEST(MakeDims, BindsPaperIndices)
{
    const TransformerConfig cfg = tinyConfig();
    const DimEnv dims = makeDims(cfg, 10, 5, 2);
    EXPECT_EQ(dims.extent("d"), cfg.d_model);
    EXPECT_EQ(dims.extent("h"), cfg.heads);
    EXPECT_EQ(dims.extent("e"), cfg.head_dim);
    EXPECT_EQ(dims.extent("f"), cfg.head_dim);
    EXPECT_EQ(dims.extent("s"), cfg.ffn_hidden);
    EXPECT_EQ(dims.extent("p"), 10);
    EXPECT_EQ(dims.extent("m0"), 5);
    EXPECT_EQ(dims.extent("m1"), 2);
}

TEST(LayerKinds, NamesAndOrder)
{
    const auto kinds = allLayerKinds();
    ASSERT_EQ(kinds.size(), 4u);
    EXPECT_EQ(toString(kinds[0]), "QKV");
    EXPECT_EQ(toString(kinds[1]), "MHA");
    EXPECT_EQ(toString(kinds[2]), "LayerNorm");
    EXPECT_EQ(toString(kinds[3]), "FFN");
}

} // namespace
} // namespace transfusion::model
