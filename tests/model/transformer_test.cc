/**
 * @file
 * Unit tests for the model zoo and the Table 1 PE mapping.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "model/pe_mapping.hh"
#include "model/transformer.hh"

namespace transfusion::model
{
namespace
{

TEST(ModelZoo, FiveEvaluationModels)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 5u);
    EXPECT_EQ(models[0].name, "BERT");
    EXPECT_EQ(models[1].name, "TrXL");
    EXPECT_EQ(models[2].name, "T5");
    EXPECT_EQ(models[3].name, "XLM");
    EXPECT_EQ(models[4].name, "Llama3");
}

TEST(ModelZoo, AllConfigsValidate)
{
    for (const auto &m : allModels()) {
        EXPECT_NO_THROW(m.validate()) << m.name;
        EXPECT_EQ(m.d_model, m.heads * m.head_dim) << m.name;
        // Paper setup: batch 64 everywhere.
        EXPECT_EQ(m.batch, 64) << m.name;
    }
}

TEST(ModelZoo, KnownShapes)
{
    const auto bert = bertBase();
    EXPECT_EQ(bert.d_model, 768);
    EXPECT_EQ(bert.heads, 12);
    EXPECT_EQ(bert.ffn_hidden, 3072);

    const auto llama = llama3_8b();
    EXPECT_EQ(llama.layers, 32);
    EXPECT_EQ(llama.d_model, 4096);
    EXPECT_EQ(llama.ffn_hidden, 14336);
    EXPECT_EQ(llama.activation, einsum::UnaryOp::Silu);
}

TEST(ModelZoo, LookupByName)
{
    EXPECT_EQ(modelByName("T5").d_model, 512);
    EXPECT_THROW(modelByName("GPT-7"), FatalError);
}

TEST(ModelZoo, ValidateRejectsInconsistency)
{
    TransformerConfig c = bertBase();
    c.head_dim = 100; // 12 * 100 != 768
    EXPECT_THROW(c.validate(), FatalError);
    c = bertBase();
    c.layers = 0;
    EXPECT_THROW(c.validate(), FatalError);
}

TEST(PeMapping, Table1Rows)
{
    // QKV: rows p (Q) or m0 (BK/BV); cols (h,e)/(h,f).
    EXPECT_EQ(peMapping(LayerKind::Qkv).rows,
              (std::vector<std::string>{ "p" }));
    EXPECT_EQ(peMapping(LayerKind::Qkv, "BK").rows,
              (std::vector<std::string>{ "m0" }));
    EXPECT_EQ(peMapping(LayerKind::Qkv, "BV").cols,
              (std::vector<std::string>{ "h", "f" }));
    // MHA: rows p, cols m0.
    EXPECT_EQ(peMapping(LayerKind::Mha).rows,
              (std::vector<std::string>{ "p" }));
    EXPECT_EQ(peMapping(LayerKind::Mha).cols,
              (std::vector<std::string>{ "m0" }));
    // LayerNorm: rows p, cols (h,f).
    EXPECT_EQ(peMapping(LayerKind::LayerNorm).cols,
              (std::vector<std::string>{ "h", "f" }));
    // FFN: rows p, cols s.
    EXPECT_EQ(peMapping(LayerKind::Ffn).cols,
              (std::vector<std::string>{ "s" }));
}

TEST(EpochCount, CeilingBehaviour)
{
    einsum::DimEnv dims{ { "p", 100 }, { "m0", 70 } };
    const DimMapping mapping{ { "p" }, { "m0" } };
    // ceil(100/32) * ceil(70/32) = 4 * 3.
    EXPECT_EQ(epochCount(mapping, dims, 32, 32), 12);
    // Array bigger than the work: one epoch.
    EXPECT_EQ(epochCount(mapping, dims, 128, 128), 1);
}

TEST(EpochCount, MultiIndexGroupsMultiply)
{
    einsum::DimEnv dims{ { "p", 8 }, { "h", 4 }, { "f", 16 } };
    const DimMapping mapping{ { "p" }, { "h", "f" } };
    // Row work 8, col work 64: ceil(8/8)*ceil(64/16) = 4.
    EXPECT_EQ(epochCount(mapping, dims, 8, 16), 4);
}

} // namespace
} // namespace transfusion::model
