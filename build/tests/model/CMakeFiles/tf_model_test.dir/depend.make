# Empty dependencies file for tf_model_test.
# This may be replaced when dependencies are built.
