file(REMOVE_RECURSE
  "CMakeFiles/tf_model_test.dir/cascades_test.cc.o"
  "CMakeFiles/tf_model_test.dir/cascades_test.cc.o.d"
  "CMakeFiles/tf_model_test.dir/transformer_test.cc.o"
  "CMakeFiles/tf_model_test.dir/transformer_test.cc.o.d"
  "tf_model_test"
  "tf_model_test.pdb"
  "tf_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
