# CMake generated Testfile for 
# Source directory: /root/repo/tests/einsum
# Build directory: /root/repo/build/tests/einsum
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/einsum/tf_einsum_test[1]_include.cmake")
