# Empty dependencies file for tf_einsum_test.
# This may be replaced when dependencies are built.
