file(REMOVE_RECURSE
  "CMakeFiles/tf_einsum_test.dir/cascade_test.cc.o"
  "CMakeFiles/tf_einsum_test.dir/cascade_test.cc.o.d"
  "CMakeFiles/tf_einsum_test.dir/dag_test.cc.o"
  "CMakeFiles/tf_einsum_test.dir/dag_test.cc.o.d"
  "CMakeFiles/tf_einsum_test.dir/einsum_test.cc.o"
  "CMakeFiles/tf_einsum_test.dir/einsum_test.cc.o.d"
  "CMakeFiles/tf_einsum_test.dir/validate_test.cc.o"
  "CMakeFiles/tf_einsum_test.dir/validate_test.cc.o.d"
  "tf_einsum_test"
  "tf_einsum_test.pdb"
  "tf_einsum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_einsum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
