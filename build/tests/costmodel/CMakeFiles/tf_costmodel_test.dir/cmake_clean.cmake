file(REMOVE_RECURSE
  "CMakeFiles/tf_costmodel_test.dir/energy_test.cc.o"
  "CMakeFiles/tf_costmodel_test.dir/energy_test.cc.o.d"
  "CMakeFiles/tf_costmodel_test.dir/latency_test.cc.o"
  "CMakeFiles/tf_costmodel_test.dir/latency_test.cc.o.d"
  "CMakeFiles/tf_costmodel_test.dir/traffic_fuzz_test.cc.o"
  "CMakeFiles/tf_costmodel_test.dir/traffic_fuzz_test.cc.o.d"
  "CMakeFiles/tf_costmodel_test.dir/traffic_test.cc.o"
  "CMakeFiles/tf_costmodel_test.dir/traffic_test.cc.o.d"
  "tf_costmodel_test"
  "tf_costmodel_test.pdb"
  "tf_costmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_costmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
