# Empty compiler generated dependencies file for tf_costmodel_test.
# This may be replaced when dependencies are built.
