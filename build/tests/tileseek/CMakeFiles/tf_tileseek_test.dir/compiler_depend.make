# Empty compiler generated dependencies file for tf_tileseek_test.
# This may be replaced when dependencies are built.
