file(REMOVE_RECURSE
  "CMakeFiles/tf_tileseek_test.dir/buffer_model_test.cc.o"
  "CMakeFiles/tf_tileseek_test.dir/buffer_model_test.cc.o.d"
  "CMakeFiles/tf_tileseek_test.dir/mcts_test.cc.o"
  "CMakeFiles/tf_tileseek_test.dir/mcts_test.cc.o.d"
  "tf_tileseek_test"
  "tf_tileseek_test.pdb"
  "tf_tileseek_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_tileseek_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
