# CMake generated Testfile for 
# Source directory: /root/repo/tests/tileseek
# Build directory: /root/repo/build/tests/tileseek
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tileseek/tf_tileseek_test[1]_include.cmake")
