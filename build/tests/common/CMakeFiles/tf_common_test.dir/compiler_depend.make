# Empty compiler generated dependencies file for tf_common_test.
# This may be replaced when dependencies are built.
