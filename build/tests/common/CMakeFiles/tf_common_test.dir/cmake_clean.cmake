file(REMOVE_RECURSE
  "CMakeFiles/tf_common_test.dir/math_utils_test.cc.o"
  "CMakeFiles/tf_common_test.dir/math_utils_test.cc.o.d"
  "CMakeFiles/tf_common_test.dir/rng_test.cc.o"
  "CMakeFiles/tf_common_test.dir/rng_test.cc.o.d"
  "CMakeFiles/tf_common_test.dir/table_test.cc.o"
  "CMakeFiles/tf_common_test.dir/table_test.cc.o.d"
  "tf_common_test"
  "tf_common_test.pdb"
  "tf_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
