file(REMOVE_RECURSE
  "CMakeFiles/tf_arch_test.dir/arch_test.cc.o"
  "CMakeFiles/tf_arch_test.dir/arch_test.cc.o.d"
  "tf_arch_test"
  "tf_arch_test.pdb"
  "tf_arch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_arch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
