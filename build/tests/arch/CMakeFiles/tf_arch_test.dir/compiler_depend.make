# Empty compiler generated dependencies file for tf_arch_test.
# This may be replaced when dependencies are built.
