file(REMOVE_RECURSE
  "CMakeFiles/tf_schedule_test.dir/decode_test.cc.o"
  "CMakeFiles/tf_schedule_test.dir/decode_test.cc.o.d"
  "CMakeFiles/tf_schedule_test.dir/evaluator_test.cc.o"
  "CMakeFiles/tf_schedule_test.dir/evaluator_test.cc.o.d"
  "CMakeFiles/tf_schedule_test.dir/stack_evaluator_test.cc.o"
  "CMakeFiles/tf_schedule_test.dir/stack_evaluator_test.cc.o.d"
  "CMakeFiles/tf_schedule_test.dir/tiling_test.cc.o"
  "CMakeFiles/tf_schedule_test.dir/tiling_test.cc.o.d"
  "tf_schedule_test"
  "tf_schedule_test.pdb"
  "tf_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
