# Empty dependencies file for tf_schedule_test.
# This may be replaced when dependencies are built.
