file(REMOVE_RECURSE
  "CMakeFiles/tf_ref_test.dir/attention_equivalence_test.cc.o"
  "CMakeFiles/tf_ref_test.dir/attention_equivalence_test.cc.o.d"
  "CMakeFiles/tf_ref_test.dir/interpreter_test.cc.o"
  "CMakeFiles/tf_ref_test.dir/interpreter_test.cc.o.d"
  "CMakeFiles/tf_ref_test.dir/recurrent_interpreter_test.cc.o"
  "CMakeFiles/tf_ref_test.dir/recurrent_interpreter_test.cc.o.d"
  "CMakeFiles/tf_ref_test.dir/reference_test.cc.o"
  "CMakeFiles/tf_ref_test.dir/reference_test.cc.o.d"
  "CMakeFiles/tf_ref_test.dir/tensor_test.cc.o"
  "CMakeFiles/tf_ref_test.dir/tensor_test.cc.o.d"
  "tf_ref_test"
  "tf_ref_test.pdb"
  "tf_ref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_ref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
