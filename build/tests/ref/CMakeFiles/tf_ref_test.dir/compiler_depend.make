# Empty compiler generated dependencies file for tf_ref_test.
# This may be replaced when dependencies are built.
