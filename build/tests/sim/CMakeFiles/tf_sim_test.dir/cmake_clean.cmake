file(REMOVE_RECURSE
  "CMakeFiles/tf_sim_test.dir/bottleneck_test.cc.o"
  "CMakeFiles/tf_sim_test.dir/bottleneck_test.cc.o.d"
  "CMakeFiles/tf_sim_test.dir/compare_test.cc.o"
  "CMakeFiles/tf_sim_test.dir/compare_test.cc.o.d"
  "tf_sim_test"
  "tf_sim_test.pdb"
  "tf_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
