# Empty dependencies file for tf_sim_test.
# This may be replaced when dependencies are built.
