# Empty dependencies file for tf_dpipe_test.
# This may be replaced when dependencies are built.
