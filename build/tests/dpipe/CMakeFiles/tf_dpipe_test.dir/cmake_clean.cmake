file(REMOVE_RECURSE
  "CMakeFiles/tf_dpipe_test.dir/dp_scheduler_test.cc.o"
  "CMakeFiles/tf_dpipe_test.dir/dp_scheduler_test.cc.o.d"
  "CMakeFiles/tf_dpipe_test.dir/partition_test.cc.o"
  "CMakeFiles/tf_dpipe_test.dir/partition_test.cc.o.d"
  "CMakeFiles/tf_dpipe_test.dir/pipeline_test.cc.o"
  "CMakeFiles/tf_dpipe_test.dir/pipeline_test.cc.o.d"
  "CMakeFiles/tf_dpipe_test.dir/scheduler_fuzz_test.cc.o"
  "CMakeFiles/tf_dpipe_test.dir/scheduler_fuzz_test.cc.o.d"
  "CMakeFiles/tf_dpipe_test.dir/trace_test.cc.o"
  "CMakeFiles/tf_dpipe_test.dir/trace_test.cc.o.d"
  "tf_dpipe_test"
  "tf_dpipe_test.pdb"
  "tf_dpipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_dpipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
