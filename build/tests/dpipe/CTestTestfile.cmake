# CMake generated Testfile for 
# Source directory: /root/repo/tests/dpipe
# Build directory: /root/repo/build/tests/dpipe
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/dpipe/tf_dpipe_test[1]_include.cmake")
