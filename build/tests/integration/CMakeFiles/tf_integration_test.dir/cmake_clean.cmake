file(REMOVE_RECURSE
  "CMakeFiles/tf_integration_test.dir/end_to_end_test.cc.o"
  "CMakeFiles/tf_integration_test.dir/end_to_end_test.cc.o.d"
  "CMakeFiles/tf_integration_test.dir/full_layer_functional_test.cc.o"
  "CMakeFiles/tf_integration_test.dir/full_layer_functional_test.cc.o.d"
  "CMakeFiles/tf_integration_test.dir/grid_sweep_test.cc.o"
  "CMakeFiles/tf_integration_test.dir/grid_sweep_test.cc.o.d"
  "CMakeFiles/tf_integration_test.dir/robustness_test.cc.o"
  "CMakeFiles/tf_integration_test.dir/robustness_test.cc.o.d"
  "tf_integration_test"
  "tf_integration_test.pdb"
  "tf_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
