# Empty compiler generated dependencies file for tf_integration_test.
# This may be replaced when dependencies are built.
