file(REMOVE_RECURSE
  "libtf_model.a"
)
