# Empty compiler generated dependencies file for tf_model.
# This may be replaced when dependencies are built.
