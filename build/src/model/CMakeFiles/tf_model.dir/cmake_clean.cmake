file(REMOVE_RECURSE
  "CMakeFiles/tf_model.dir/cascades.cc.o"
  "CMakeFiles/tf_model.dir/cascades.cc.o.d"
  "CMakeFiles/tf_model.dir/pe_mapping.cc.o"
  "CMakeFiles/tf_model.dir/pe_mapping.cc.o.d"
  "CMakeFiles/tf_model.dir/stack.cc.o"
  "CMakeFiles/tf_model.dir/stack.cc.o.d"
  "CMakeFiles/tf_model.dir/transformer.cc.o"
  "CMakeFiles/tf_model.dir/transformer.cc.o.d"
  "libtf_model.a"
  "libtf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
