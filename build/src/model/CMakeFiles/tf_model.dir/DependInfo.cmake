
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cascades.cc" "src/model/CMakeFiles/tf_model.dir/cascades.cc.o" "gcc" "src/model/CMakeFiles/tf_model.dir/cascades.cc.o.d"
  "/root/repo/src/model/pe_mapping.cc" "src/model/CMakeFiles/tf_model.dir/pe_mapping.cc.o" "gcc" "src/model/CMakeFiles/tf_model.dir/pe_mapping.cc.o.d"
  "/root/repo/src/model/stack.cc" "src/model/CMakeFiles/tf_model.dir/stack.cc.o" "gcc" "src/model/CMakeFiles/tf_model.dir/stack.cc.o.d"
  "/root/repo/src/model/transformer.cc" "src/model/CMakeFiles/tf_model.dir/transformer.cc.o" "gcc" "src/model/CMakeFiles/tf_model.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/einsum/CMakeFiles/tf_einsum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
