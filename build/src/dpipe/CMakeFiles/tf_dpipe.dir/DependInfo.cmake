
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpipe/dp_scheduler.cc" "src/dpipe/CMakeFiles/tf_dpipe.dir/dp_scheduler.cc.o" "gcc" "src/dpipe/CMakeFiles/tf_dpipe.dir/dp_scheduler.cc.o.d"
  "/root/repo/src/dpipe/partition.cc" "src/dpipe/CMakeFiles/tf_dpipe.dir/partition.cc.o" "gcc" "src/dpipe/CMakeFiles/tf_dpipe.dir/partition.cc.o.d"
  "/root/repo/src/dpipe/pipeline.cc" "src/dpipe/CMakeFiles/tf_dpipe.dir/pipeline.cc.o" "gcc" "src/dpipe/CMakeFiles/tf_dpipe.dir/pipeline.cc.o.d"
  "/root/repo/src/dpipe/trace.cc" "src/dpipe/CMakeFiles/tf_dpipe.dir/trace.cc.o" "gcc" "src/dpipe/CMakeFiles/tf_dpipe.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/einsum/CMakeFiles/tf_einsum.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/tf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/tf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tf_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
