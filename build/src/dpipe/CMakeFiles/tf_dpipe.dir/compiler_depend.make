# Empty compiler generated dependencies file for tf_dpipe.
# This may be replaced when dependencies are built.
