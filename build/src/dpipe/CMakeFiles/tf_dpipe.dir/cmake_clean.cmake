file(REMOVE_RECURSE
  "CMakeFiles/tf_dpipe.dir/dp_scheduler.cc.o"
  "CMakeFiles/tf_dpipe.dir/dp_scheduler.cc.o.d"
  "CMakeFiles/tf_dpipe.dir/partition.cc.o"
  "CMakeFiles/tf_dpipe.dir/partition.cc.o.d"
  "CMakeFiles/tf_dpipe.dir/pipeline.cc.o"
  "CMakeFiles/tf_dpipe.dir/pipeline.cc.o.d"
  "CMakeFiles/tf_dpipe.dir/trace.cc.o"
  "CMakeFiles/tf_dpipe.dir/trace.cc.o.d"
  "libtf_dpipe.a"
  "libtf_dpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_dpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
