file(REMOVE_RECURSE
  "libtf_dpipe.a"
)
