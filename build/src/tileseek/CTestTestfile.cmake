# CMake generated Testfile for 
# Source directory: /root/repo/src/tileseek
# Build directory: /root/repo/build/src/tileseek
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
