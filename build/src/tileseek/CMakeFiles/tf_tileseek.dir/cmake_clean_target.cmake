file(REMOVE_RECURSE
  "libtf_tileseek.a"
)
