file(REMOVE_RECURSE
  "CMakeFiles/tf_tileseek.dir/buffer_model.cc.o"
  "CMakeFiles/tf_tileseek.dir/buffer_model.cc.o.d"
  "CMakeFiles/tf_tileseek.dir/mcts.cc.o"
  "CMakeFiles/tf_tileseek.dir/mcts.cc.o.d"
  "CMakeFiles/tf_tileseek.dir/search_space.cc.o"
  "CMakeFiles/tf_tileseek.dir/search_space.cc.o.d"
  "libtf_tileseek.a"
  "libtf_tileseek.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_tileseek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
