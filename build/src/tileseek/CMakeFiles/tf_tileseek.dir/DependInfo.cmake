
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tileseek/buffer_model.cc" "src/tileseek/CMakeFiles/tf_tileseek.dir/buffer_model.cc.o" "gcc" "src/tileseek/CMakeFiles/tf_tileseek.dir/buffer_model.cc.o.d"
  "/root/repo/src/tileseek/mcts.cc" "src/tileseek/CMakeFiles/tf_tileseek.dir/mcts.cc.o" "gcc" "src/tileseek/CMakeFiles/tf_tileseek.dir/mcts.cc.o.d"
  "/root/repo/src/tileseek/search_space.cc" "src/tileseek/CMakeFiles/tf_tileseek.dir/search_space.cc.o" "gcc" "src/tileseek/CMakeFiles/tf_tileseek.dir/search_space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/tf_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
