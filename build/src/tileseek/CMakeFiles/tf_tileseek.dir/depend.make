# Empty dependencies file for tf_tileseek.
# This may be replaced when dependencies are built.
