file(REMOVE_RECURSE
  "CMakeFiles/tf_sim.dir/bottleneck.cc.o"
  "CMakeFiles/tf_sim.dir/bottleneck.cc.o.d"
  "CMakeFiles/tf_sim.dir/compare.cc.o"
  "CMakeFiles/tf_sim.dir/compare.cc.o.d"
  "libtf_sim.a"
  "libtf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
