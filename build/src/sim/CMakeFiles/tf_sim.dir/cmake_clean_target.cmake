file(REMOVE_RECURSE
  "libtf_sim.a"
)
