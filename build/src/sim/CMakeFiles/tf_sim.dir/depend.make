# Empty dependencies file for tf_sim.
# This may be replaced when dependencies are built.
