# Empty dependencies file for tf_common.
# This may be replaced when dependencies are built.
