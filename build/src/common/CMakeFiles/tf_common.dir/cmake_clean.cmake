file(REMOVE_RECURSE
  "CMakeFiles/tf_common.dir/logging.cc.o"
  "CMakeFiles/tf_common.dir/logging.cc.o.d"
  "CMakeFiles/tf_common.dir/math_utils.cc.o"
  "CMakeFiles/tf_common.dir/math_utils.cc.o.d"
  "CMakeFiles/tf_common.dir/table.cc.o"
  "CMakeFiles/tf_common.dir/table.cc.o.d"
  "libtf_common.a"
  "libtf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
