file(REMOVE_RECURSE
  "libtf_common.a"
)
