
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/einsum/cascade.cc" "src/einsum/CMakeFiles/tf_einsum.dir/cascade.cc.o" "gcc" "src/einsum/CMakeFiles/tf_einsum.dir/cascade.cc.o.d"
  "/root/repo/src/einsum/dag.cc" "src/einsum/CMakeFiles/tf_einsum.dir/dag.cc.o" "gcc" "src/einsum/CMakeFiles/tf_einsum.dir/dag.cc.o.d"
  "/root/repo/src/einsum/dims.cc" "src/einsum/CMakeFiles/tf_einsum.dir/dims.cc.o" "gcc" "src/einsum/CMakeFiles/tf_einsum.dir/dims.cc.o.d"
  "/root/repo/src/einsum/einsum.cc" "src/einsum/CMakeFiles/tf_einsum.dir/einsum.cc.o" "gcc" "src/einsum/CMakeFiles/tf_einsum.dir/einsum.cc.o.d"
  "/root/repo/src/einsum/ops.cc" "src/einsum/CMakeFiles/tf_einsum.dir/ops.cc.o" "gcc" "src/einsum/CMakeFiles/tf_einsum.dir/ops.cc.o.d"
  "/root/repo/src/einsum/validate.cc" "src/einsum/CMakeFiles/tf_einsum.dir/validate.cc.o" "gcc" "src/einsum/CMakeFiles/tf_einsum.dir/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
