file(REMOVE_RECURSE
  "libtf_einsum.a"
)
