# Empty compiler generated dependencies file for tf_einsum.
# This may be replaced when dependencies are built.
