file(REMOVE_RECURSE
  "CMakeFiles/tf_einsum.dir/cascade.cc.o"
  "CMakeFiles/tf_einsum.dir/cascade.cc.o.d"
  "CMakeFiles/tf_einsum.dir/dag.cc.o"
  "CMakeFiles/tf_einsum.dir/dag.cc.o.d"
  "CMakeFiles/tf_einsum.dir/dims.cc.o"
  "CMakeFiles/tf_einsum.dir/dims.cc.o.d"
  "CMakeFiles/tf_einsum.dir/einsum.cc.o"
  "CMakeFiles/tf_einsum.dir/einsum.cc.o.d"
  "CMakeFiles/tf_einsum.dir/ops.cc.o"
  "CMakeFiles/tf_einsum.dir/ops.cc.o.d"
  "CMakeFiles/tf_einsum.dir/validate.cc.o"
  "CMakeFiles/tf_einsum.dir/validate.cc.o.d"
  "libtf_einsum.a"
  "libtf_einsum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_einsum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
