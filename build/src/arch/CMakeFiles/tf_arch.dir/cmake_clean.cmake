file(REMOVE_RECURSE
  "CMakeFiles/tf_arch.dir/arch.cc.o"
  "CMakeFiles/tf_arch.dir/arch.cc.o.d"
  "libtf_arch.a"
  "libtf_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
