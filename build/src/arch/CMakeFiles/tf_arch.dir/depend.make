# Empty dependencies file for tf_arch.
# This may be replaced when dependencies are built.
