file(REMOVE_RECURSE
  "libtf_arch.a"
)
