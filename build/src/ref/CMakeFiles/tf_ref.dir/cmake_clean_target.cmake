file(REMOVE_RECURSE
  "libtf_ref.a"
)
