
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ref/interpreter.cc" "src/ref/CMakeFiles/tf_ref.dir/interpreter.cc.o" "gcc" "src/ref/CMakeFiles/tf_ref.dir/interpreter.cc.o.d"
  "/root/repo/src/ref/recurrent_interpreter.cc" "src/ref/CMakeFiles/tf_ref.dir/recurrent_interpreter.cc.o" "gcc" "src/ref/CMakeFiles/tf_ref.dir/recurrent_interpreter.cc.o.d"
  "/root/repo/src/ref/reference.cc" "src/ref/CMakeFiles/tf_ref.dir/reference.cc.o" "gcc" "src/ref/CMakeFiles/tf_ref.dir/reference.cc.o.d"
  "/root/repo/src/ref/streaming_attention.cc" "src/ref/CMakeFiles/tf_ref.dir/streaming_attention.cc.o" "gcc" "src/ref/CMakeFiles/tf_ref.dir/streaming_attention.cc.o.d"
  "/root/repo/src/ref/tensor.cc" "src/ref/CMakeFiles/tf_ref.dir/tensor.cc.o" "gcc" "src/ref/CMakeFiles/tf_ref.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/einsum/CMakeFiles/tf_einsum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
