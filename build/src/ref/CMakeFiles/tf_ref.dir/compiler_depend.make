# Empty compiler generated dependencies file for tf_ref.
# This may be replaced when dependencies are built.
