file(REMOVE_RECURSE
  "CMakeFiles/tf_ref.dir/interpreter.cc.o"
  "CMakeFiles/tf_ref.dir/interpreter.cc.o.d"
  "CMakeFiles/tf_ref.dir/recurrent_interpreter.cc.o"
  "CMakeFiles/tf_ref.dir/recurrent_interpreter.cc.o.d"
  "CMakeFiles/tf_ref.dir/reference.cc.o"
  "CMakeFiles/tf_ref.dir/reference.cc.o.d"
  "CMakeFiles/tf_ref.dir/streaming_attention.cc.o"
  "CMakeFiles/tf_ref.dir/streaming_attention.cc.o.d"
  "CMakeFiles/tf_ref.dir/tensor.cc.o"
  "CMakeFiles/tf_ref.dir/tensor.cc.o.d"
  "libtf_ref.a"
  "libtf_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
