file(REMOVE_RECURSE
  "CMakeFiles/tf_costmodel.dir/energy.cc.o"
  "CMakeFiles/tf_costmodel.dir/energy.cc.o.d"
  "CMakeFiles/tf_costmodel.dir/latency.cc.o"
  "CMakeFiles/tf_costmodel.dir/latency.cc.o.d"
  "CMakeFiles/tf_costmodel.dir/traffic.cc.o"
  "CMakeFiles/tf_costmodel.dir/traffic.cc.o.d"
  "libtf_costmodel.a"
  "libtf_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
