file(REMOVE_RECURSE
  "libtf_costmodel.a"
)
