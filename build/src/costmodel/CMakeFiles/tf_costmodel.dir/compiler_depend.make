# Empty compiler generated dependencies file for tf_costmodel.
# This may be replaced when dependencies are built.
