
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/energy.cc" "src/costmodel/CMakeFiles/tf_costmodel.dir/energy.cc.o" "gcc" "src/costmodel/CMakeFiles/tf_costmodel.dir/energy.cc.o.d"
  "/root/repo/src/costmodel/latency.cc" "src/costmodel/CMakeFiles/tf_costmodel.dir/latency.cc.o" "gcc" "src/costmodel/CMakeFiles/tf_costmodel.dir/latency.cc.o.d"
  "/root/repo/src/costmodel/traffic.cc" "src/costmodel/CMakeFiles/tf_costmodel.dir/traffic.cc.o" "gcc" "src/costmodel/CMakeFiles/tf_costmodel.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/einsum/CMakeFiles/tf_einsum.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/tf_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
