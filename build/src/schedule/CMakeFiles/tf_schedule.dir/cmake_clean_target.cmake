file(REMOVE_RECURSE
  "libtf_schedule.a"
)
