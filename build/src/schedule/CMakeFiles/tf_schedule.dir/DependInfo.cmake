
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/decode.cc" "src/schedule/CMakeFiles/tf_schedule.dir/decode.cc.o" "gcc" "src/schedule/CMakeFiles/tf_schedule.dir/decode.cc.o.d"
  "/root/repo/src/schedule/evaluator.cc" "src/schedule/CMakeFiles/tf_schedule.dir/evaluator.cc.o" "gcc" "src/schedule/CMakeFiles/tf_schedule.dir/evaluator.cc.o.d"
  "/root/repo/src/schedule/metrics.cc" "src/schedule/CMakeFiles/tf_schedule.dir/metrics.cc.o" "gcc" "src/schedule/CMakeFiles/tf_schedule.dir/metrics.cc.o.d"
  "/root/repo/src/schedule/stack_evaluator.cc" "src/schedule/CMakeFiles/tf_schedule.dir/stack_evaluator.cc.o" "gcc" "src/schedule/CMakeFiles/tf_schedule.dir/stack_evaluator.cc.o.d"
  "/root/repo/src/schedule/strategy.cc" "src/schedule/CMakeFiles/tf_schedule.dir/strategy.cc.o" "gcc" "src/schedule/CMakeFiles/tf_schedule.dir/strategy.cc.o.d"
  "/root/repo/src/schedule/tiling.cc" "src/schedule/CMakeFiles/tf_schedule.dir/tiling.cc.o" "gcc" "src/schedule/CMakeFiles/tf_schedule.dir/tiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/einsum/CMakeFiles/tf_einsum.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/tf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/tf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/dpipe/CMakeFiles/tf_dpipe.dir/DependInfo.cmake"
  "/root/repo/build/src/tileseek/CMakeFiles/tf_tileseek.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
