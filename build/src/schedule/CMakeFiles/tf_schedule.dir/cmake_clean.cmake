file(REMOVE_RECURSE
  "CMakeFiles/tf_schedule.dir/decode.cc.o"
  "CMakeFiles/tf_schedule.dir/decode.cc.o.d"
  "CMakeFiles/tf_schedule.dir/evaluator.cc.o"
  "CMakeFiles/tf_schedule.dir/evaluator.cc.o.d"
  "CMakeFiles/tf_schedule.dir/metrics.cc.o"
  "CMakeFiles/tf_schedule.dir/metrics.cc.o.d"
  "CMakeFiles/tf_schedule.dir/stack_evaluator.cc.o"
  "CMakeFiles/tf_schedule.dir/stack_evaluator.cc.o.d"
  "CMakeFiles/tf_schedule.dir/strategy.cc.o"
  "CMakeFiles/tf_schedule.dir/strategy.cc.o.d"
  "CMakeFiles/tf_schedule.dir/tiling.cc.o"
  "CMakeFiles/tf_schedule.dir/tiling.cc.o.d"
  "libtf_schedule.a"
  "libtf_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
