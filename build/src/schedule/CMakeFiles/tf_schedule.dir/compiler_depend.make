# Empty compiler generated dependencies file for tf_schedule.
# This may be replaced when dependencies are built.
