# Empty dependencies file for functional_check.
# This may be replaced when dependencies are built.
