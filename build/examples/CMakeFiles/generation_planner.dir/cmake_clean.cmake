file(REMOVE_RECURSE
  "CMakeFiles/generation_planner.dir/generation_planner.cpp.o"
  "CMakeFiles/generation_planner.dir/generation_planner.cpp.o.d"
  "generation_planner"
  "generation_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generation_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
