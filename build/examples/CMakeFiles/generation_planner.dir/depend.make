# Empty dependencies file for generation_planner.
# This may be replaced when dependencies are built.
