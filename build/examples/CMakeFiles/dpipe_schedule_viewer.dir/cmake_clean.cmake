file(REMOVE_RECURSE
  "CMakeFiles/dpipe_schedule_viewer.dir/dpipe_schedule_viewer.cpp.o"
  "CMakeFiles/dpipe_schedule_viewer.dir/dpipe_schedule_viewer.cpp.o.d"
  "dpipe_schedule_viewer"
  "dpipe_schedule_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpipe_schedule_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
