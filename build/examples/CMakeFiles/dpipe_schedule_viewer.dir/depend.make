# Empty dependencies file for dpipe_schedule_viewer.
# This may be replaced when dependencies are built.
