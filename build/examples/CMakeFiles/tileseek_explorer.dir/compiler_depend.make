# Empty compiler generated dependencies file for tileseek_explorer.
# This may be replaced when dependencies are built.
