file(REMOVE_RECURSE
  "CMakeFiles/tileseek_explorer.dir/tileseek_explorer.cpp.o"
  "CMakeFiles/tileseek_explorer.dir/tileseek_explorer.cpp.o.d"
  "tileseek_explorer"
  "tileseek_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tileseek_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
