
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tileseek_explorer.cpp" "examples/CMakeFiles/tileseek_explorer.dir/tileseek_explorer.cpp.o" "gcc" "examples/CMakeFiles/tileseek_explorer.dir/tileseek_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ref/CMakeFiles/tf_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/tf_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/dpipe/CMakeFiles/tf_dpipe.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/tf_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/tf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/einsum/CMakeFiles/tf_einsum.dir/DependInfo.cmake"
  "/root/repo/build/src/tileseek/CMakeFiles/tf_tileseek.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/tf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
