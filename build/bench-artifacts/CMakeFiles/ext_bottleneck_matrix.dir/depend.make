# Empty dependencies file for ext_bottleneck_matrix.
# This may be replaced when dependencies are built.
