file(REMOVE_RECURSE
  "../bench/ext_bottleneck_matrix"
  "../bench/ext_bottleneck_matrix.pdb"
  "CMakeFiles/ext_bottleneck_matrix.dir/ext_bottleneck_matrix.cc.o"
  "CMakeFiles/ext_bottleneck_matrix.dir/ext_bottleneck_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bottleneck_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
