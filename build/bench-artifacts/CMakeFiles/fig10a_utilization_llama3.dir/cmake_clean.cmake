file(REMOVE_RECURSE
  "../bench/fig10a_utilization_llama3"
  "../bench/fig10a_utilization_llama3.pdb"
  "CMakeFiles/fig10a_utilization_llama3.dir/fig10a_utilization_llama3.cc.o"
  "CMakeFiles/fig10a_utilization_llama3.dir/fig10a_utilization_llama3.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_utilization_llama3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
