# Empty compiler generated dependencies file for fig10a_utilization_llama3.
# This may be replaced when dependencies are built.
