file(REMOVE_RECURSE
  "libtf_bench_util.a"
)
