file(REMOVE_RECURSE
  "CMakeFiles/tf_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/tf_bench_util.dir/bench_util.cc.o.d"
  "libtf_bench_util.a"
  "libtf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
