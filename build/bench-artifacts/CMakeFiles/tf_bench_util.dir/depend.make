# Empty dependencies file for tf_bench_util.
# This may be replaced when dependencies are built.
