# Empty dependencies file for fig09b_pe_scaling_models.
# This may be replaced when dependencies are built.
