file(REMOVE_RECURSE
  "../bench/fig09b_pe_scaling_models"
  "../bench/fig09b_pe_scaling_models.pdb"
  "CMakeFiles/fig09b_pe_scaling_models.dir/fig09b_pe_scaling_models.cc.o"
  "CMakeFiles/fig09b_pe_scaling_models.dir/fig09b_pe_scaling_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_pe_scaling_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
