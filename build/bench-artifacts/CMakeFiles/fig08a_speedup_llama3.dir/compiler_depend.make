# Empty compiler generated dependencies file for fig08a_speedup_llama3.
# This may be replaced when dependencies are built.
