file(REMOVE_RECURSE
  "../bench/fig08a_speedup_llama3"
  "../bench/fig08a_speedup_llama3.pdb"
  "CMakeFiles/fig08a_speedup_llama3.dir/fig08a_speedup_llama3.cc.o"
  "CMakeFiles/fig08a_speedup_llama3.dir/fig08a_speedup_llama3.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08a_speedup_llama3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
