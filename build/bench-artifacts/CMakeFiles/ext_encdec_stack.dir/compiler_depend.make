# Empty compiler generated dependencies file for ext_encdec_stack.
# This may be replaced when dependencies are built.
