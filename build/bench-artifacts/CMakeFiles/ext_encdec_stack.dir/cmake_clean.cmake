file(REMOVE_RECURSE
  "../bench/ext_encdec_stack"
  "../bench/ext_encdec_stack.pdb"
  "CMakeFiles/ext_encdec_stack.dir/ext_encdec_stack.cc.o"
  "CMakeFiles/ext_encdec_stack.dir/ext_encdec_stack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_encdec_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
