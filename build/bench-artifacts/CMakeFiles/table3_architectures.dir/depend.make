# Empty dependencies file for table3_architectures.
# This may be replaced when dependencies are built.
