file(REMOVE_RECURSE
  "../bench/table3_architectures"
  "../bench/table3_architectures.pdb"
  "CMakeFiles/table3_architectures.dir/table3_architectures.cc.o"
  "CMakeFiles/table3_architectures.dir/table3_architectures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
