file(REMOVE_RECURSE
  "../bench/fig13_energy_breakdown"
  "../bench/fig13_energy_breakdown.pdb"
  "CMakeFiles/fig13_energy_breakdown.dir/fig13_energy_breakdown.cc.o"
  "CMakeFiles/fig13_energy_breakdown.dir/fig13_energy_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
