# Empty dependencies file for fig13_energy_breakdown.
# This may be replaced when dependencies are built.
