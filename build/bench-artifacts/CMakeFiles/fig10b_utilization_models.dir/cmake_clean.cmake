file(REMOVE_RECURSE
  "../bench/fig10b_utilization_models"
  "../bench/fig10b_utilization_models.pdb"
  "CMakeFiles/fig10b_utilization_models.dir/fig10b_utilization_models.cc.o"
  "CMakeFiles/fig10b_utilization_models.dir/fig10b_utilization_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_utilization_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
