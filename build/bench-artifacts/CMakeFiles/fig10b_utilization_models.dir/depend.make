# Empty dependencies file for fig10b_utilization_models.
# This may be replaced when dependencies are built.
