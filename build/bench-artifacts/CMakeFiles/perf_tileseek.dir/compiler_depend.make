# Empty compiler generated dependencies file for perf_tileseek.
# This may be replaced when dependencies are built.
