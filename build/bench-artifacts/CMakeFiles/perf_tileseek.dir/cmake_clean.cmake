file(REMOVE_RECURSE
  "../bench/perf_tileseek"
  "../bench/perf_tileseek.pdb"
  "CMakeFiles/perf_tileseek.dir/perf_tileseek.cc.o"
  "CMakeFiles/perf_tileseek.dir/perf_tileseek.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_tileseek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
