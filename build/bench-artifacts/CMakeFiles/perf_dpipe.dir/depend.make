# Empty dependencies file for perf_dpipe.
# This may be replaced when dependencies are built.
