file(REMOVE_RECURSE
  "../bench/perf_dpipe"
  "../bench/perf_dpipe.pdb"
  "CMakeFiles/perf_dpipe.dir/perf_dpipe.cc.o"
  "CMakeFiles/perf_dpipe.dir/perf_dpipe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_dpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
