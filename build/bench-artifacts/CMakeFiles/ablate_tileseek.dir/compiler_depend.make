# Empty compiler generated dependencies file for ablate_tileseek.
# This may be replaced when dependencies are built.
