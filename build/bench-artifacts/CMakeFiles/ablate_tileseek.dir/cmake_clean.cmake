file(REMOVE_RECURSE
  "../bench/ablate_tileseek"
  "../bench/ablate_tileseek.pdb"
  "CMakeFiles/ablate_tileseek.dir/ablate_tileseek.cc.o"
  "CMakeFiles/ablate_tileseek.dir/ablate_tileseek.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_tileseek.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
