file(REMOVE_RECURSE
  "../bench/fig08b_speedup_models_64k"
  "../bench/fig08b_speedup_models_64k.pdb"
  "CMakeFiles/fig08b_speedup_models_64k.dir/fig08b_speedup_models_64k.cc.o"
  "CMakeFiles/fig08b_speedup_models_64k.dir/fig08b_speedup_models_64k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_speedup_models_64k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
