# Empty dependencies file for fig08b_speedup_models_64k.
# This may be replaced when dependencies are built.
