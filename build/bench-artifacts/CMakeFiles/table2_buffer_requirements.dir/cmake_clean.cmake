file(REMOVE_RECURSE
  "../bench/table2_buffer_requirements"
  "../bench/table2_buffer_requirements.pdb"
  "CMakeFiles/table2_buffer_requirements.dir/table2_buffer_requirements.cc.o"
  "CMakeFiles/table2_buffer_requirements.dir/table2_buffer_requirements.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_buffer_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
