# Empty compiler generated dependencies file for table2_buffer_requirements.
# This may be replaced when dependencies are built.
