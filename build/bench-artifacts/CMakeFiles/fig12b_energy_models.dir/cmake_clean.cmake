file(REMOVE_RECURSE
  "../bench/fig12b_energy_models"
  "../bench/fig12b_energy_models.pdb"
  "CMakeFiles/fig12b_energy_models.dir/fig12b_energy_models.cc.o"
  "CMakeFiles/fig12b_energy_models.dir/fig12b_energy_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_energy_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
