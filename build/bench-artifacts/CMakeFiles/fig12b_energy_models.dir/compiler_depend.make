# Empty compiler generated dependencies file for fig12b_energy_models.
# This may be replaced when dependencies are built.
