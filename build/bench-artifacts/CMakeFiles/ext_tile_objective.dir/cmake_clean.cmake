file(REMOVE_RECURSE
  "../bench/ext_tile_objective"
  "../bench/ext_tile_objective.pdb"
  "CMakeFiles/ext_tile_objective.dir/ext_tile_objective.cc.o"
  "CMakeFiles/ext_tile_objective.dir/ext_tile_objective.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tile_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
