# Empty dependencies file for ext_tile_objective.
# This may be replaced when dependencies are built.
