# Empty compiler generated dependencies file for fig12a_energy_llama3.
# This may be replaced when dependencies are built.
