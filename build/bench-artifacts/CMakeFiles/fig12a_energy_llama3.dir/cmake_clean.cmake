file(REMOVE_RECURSE
  "../bench/fig12a_energy_llama3"
  "../bench/fig12a_energy_llama3.pdb"
  "CMakeFiles/fig12a_energy_llama3.dir/fig12a_energy_llama3.cc.o"
  "CMakeFiles/fig12a_energy_llama3.dir/fig12a_energy_llama3.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_energy_llama3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
