# Empty dependencies file for ext_decode_throughput.
# This may be replaced when dependencies are built.
