file(REMOVE_RECURSE
  "../bench/ext_decode_throughput"
  "../bench/ext_decode_throughput.pdb"
  "CMakeFiles/ext_decode_throughput.dir/ext_decode_throughput.cc.o"
  "CMakeFiles/ext_decode_throughput.dir/ext_decode_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_decode_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
