file(REMOVE_RECURSE
  "../bench/perf_evaluator"
  "../bench/perf_evaluator.pdb"
  "CMakeFiles/perf_evaluator.dir/perf_evaluator.cc.o"
  "CMakeFiles/perf_evaluator.dir/perf_evaluator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
