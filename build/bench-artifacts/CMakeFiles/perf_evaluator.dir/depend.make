# Empty dependencies file for perf_evaluator.
# This may be replaced when dependencies are built.
