file(REMOVE_RECURSE
  "../bench/headline_geomean"
  "../bench/headline_geomean.pdb"
  "CMakeFiles/headline_geomean.dir/headline_geomean.cc.o"
  "CMakeFiles/headline_geomean.dir/headline_geomean.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_geomean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
