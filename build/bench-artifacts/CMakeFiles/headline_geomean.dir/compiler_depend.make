# Empty compiler generated dependencies file for headline_geomean.
# This may be replaced when dependencies are built.
