file(REMOVE_RECURSE
  "../bench/fig11_speedup_contribution"
  "../bench/fig11_speedup_contribution.pdb"
  "CMakeFiles/fig11_speedup_contribution.dir/fig11_speedup_contribution.cc.o"
  "CMakeFiles/fig11_speedup_contribution.dir/fig11_speedup_contribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_speedup_contribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
