# Empty compiler generated dependencies file for fig11_speedup_contribution.
# This may be replaced when dependencies are built.
