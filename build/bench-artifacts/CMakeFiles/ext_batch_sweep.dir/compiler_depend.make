# Empty compiler generated dependencies file for ext_batch_sweep.
# This may be replaced when dependencies are built.
