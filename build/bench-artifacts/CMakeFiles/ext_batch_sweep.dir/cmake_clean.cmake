file(REMOVE_RECURSE
  "../bench/ext_batch_sweep"
  "../bench/ext_batch_sweep.pdb"
  "CMakeFiles/ext_batch_sweep.dir/ext_batch_sweep.cc.o"
  "CMakeFiles/ext_batch_sweep.dir/ext_batch_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
