file(REMOVE_RECURSE
  "../bench/fig09a_pe_scaling_llama3"
  "../bench/fig09a_pe_scaling_llama3.pdb"
  "CMakeFiles/fig09a_pe_scaling_llama3.dir/fig09a_pe_scaling_llama3.cc.o"
  "CMakeFiles/fig09a_pe_scaling_llama3.dir/fig09a_pe_scaling_llama3.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_pe_scaling_llama3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
