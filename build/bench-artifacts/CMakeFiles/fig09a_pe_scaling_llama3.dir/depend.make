# Empty dependencies file for fig09a_pe_scaling_llama3.
# This may be replaced when dependencies are built.
