file(REMOVE_RECURSE
  "../bench/ext_arch_sensitivity"
  "../bench/ext_arch_sensitivity.pdb"
  "CMakeFiles/ext_arch_sensitivity.dir/ext_arch_sensitivity.cc.o"
  "CMakeFiles/ext_arch_sensitivity.dir/ext_arch_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_arch_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
