# Empty compiler generated dependencies file for ext_arch_sensitivity.
# This may be replaced when dependencies are built.
